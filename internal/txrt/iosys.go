package txrt

import (
	"fmt"

	"tmisa/internal/core"
)

// IOSys is the simulated operating-system I/O substrate: an in-memory
// file system behind a syscall boundary with realistic costs. The paper's
// evaluation needs it for the Section 7.2 transactional-I/O experiment;
// file contents live at the host level (outside simulated memory) because
// the experiment measures syscall serialization behaviour, not data-path
// conflicts.
type IOSys struct {
	// SyscallCost is the fixed cycle cost of entering and leaving the
	// kernel for one I/O system call.
	SyscallCost int
	// ByteCost is the additional cycle cost per 8 bytes transferred.
	ByteCost int
	// DeviceCost is the per-call device occupancy in cycles: the device
	// serializes requests, so concurrent syscalls queue here (like the
	// bus model).
	DeviceCost int

	deviceFree uint64

	files  map[int]*file
	nextFD int
}

type file struct {
	name string
	data []byte
	pos  int64
}

// NewIOSys returns an I/O system with default costs.
func NewIOSys() *IOSys {
	return &IOSys{
		SyscallCost: 250,
		ByteCost:    1,
		DeviceCost:  40,
		files:       make(map[int]*file),
	}
}

// Open creates (or truncates) a simulated file and returns its descriptor.
// Call during setup; it charges nothing.
func (io *IOSys) Open(name string) int {
	fd := io.nextFD
	io.nextFD++
	io.files[fd] = &file{name: name}
	return fd
}

// Size returns a file's current length, for test verification.
func (io *IOSys) Size(fd int) int { return len(io.file(fd).data) }

// Contents returns a copy of the file's bytes, for test verification.
func (io *IOSys) Contents(fd int) []byte {
	return append([]byte(nil), io.file(fd).data...)
}

// Pos returns the file position.
func (io *IOSys) Pos(fd int) int64 { return io.file(fd).pos }

func (io *IOSys) file(fd int) *file {
	f, ok := io.files[fd]
	if !ok {
		panic(fmt.Sprintf("txrt: bad file descriptor %d", fd))
	}
	return f
}

// charge accounts one syscall of n bytes: kernel entry plus data movement
// plus queuing on the serialized device.
func (io *IOSys) charge(p *core.Proc, n int) {
	p.Tick(io.SyscallCost + io.ByteCost*(n+7)/8)
	now := p.Now()
	start := now
	if io.deviceFree > start {
		start = io.deviceFree
	}
	io.deviceFree = start + uint64(io.DeviceCost)
	p.Counters().Syscalls++
	p.Counters().IOBytes += uint64(n)
	// Queueing delay + occupancy, charged like a bus transfer.
	p.TickCycles(io.deviceFree - now)
}

// SysWrite appends data at the file position (the write system call).
// This is the raw syscall; transactional code reaches it through TxWrite's
// commit handler or SerialWrite.
func (io *IOSys) SysWrite(p *core.Proc, fd int, data []byte) {
	io.charge(p, len(data))
	f := io.file(fd)
	// Writes at pos; the common append case extends the file.
	end := f.pos + int64(len(data))
	if int64(len(f.data)) < end {
		f.data = append(f.data, make([]byte, end-int64(len(f.data)))...)
	}
	copy(f.data[f.pos:end], data)
	f.pos = end
}

// SysRead reads up to n bytes from the file position (the read system
// call), advancing it.
func (io *IOSys) SysRead(p *core.Proc, fd int, n int) []byte {
	io.charge(p, n)
	f := io.file(fd)
	if f.pos >= int64(len(f.data)) {
		return nil
	}
	end := f.pos + int64(n)
	if end > int64(len(f.data)) {
		end = int64(len(f.data))
	}
	out := append([]byte(nil), f.data[f.pos:end]...)
	f.pos = end
	return out
}

// SysSeek sets the absolute file position (the lseek system call); the
// read-compensation violation handler uses it.
func (io *IOSys) SysSeek(p *core.Proc, fd int, pos int64) {
	io.charge(p, 0)
	io.file(fd).pos = pos
}
