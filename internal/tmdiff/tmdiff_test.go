package tmdiff

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tmisa/internal/analysis"
	"tmisa/internal/analysis/tmlint"
)

// buildMap runs the conflictpairs analysis in-process over the packages
// the differential is defined on (the workload suite plus the B-tree it
// links against — linting the workloads alone would leave btree bodies
// out of the call graph and silently weaken the map).
func buildMap(t *testing.T) *tmlint.ConflictMap {
	t.Helper()
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	ld, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.LoadPatterns("./internal/workloads", "./internal/btree")
	if err != nil {
		t.Fatal(err)
	}
	cm, err := tmlint.BuildConflictMap(analysis.NewProgram(pkgs))
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

// TestDifferentialSuite is the end-to-end check CI gates on: the static
// may-conflict map must cover every granule the profiler attributes a
// runtime data conflict to, across the full workload × engine matrix.
func TestDifferentialSuite(t *testing.T) {
	cm := buildMap(t)
	res, err := Run(cm, Config{CPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := 9 * 3; res.Runs != want {
		t.Errorf("Runs = %d, want %d (9 workloads × 3 engines)", res.Runs, want)
	}
	if !res.Sound() {
		for _, o := range res.Missing {
			t.Errorf("soundness violation: %s", o)
		}
	}
	if len(res.Observed) == 0 {
		t.Fatal("no runtime conflicts observed anywhere in the matrix; the tracer or attribution is broken")
	}
	// High-contention granules that must show up in any healthy run: the
	// JBB order counter is incremented by every CPU, and mp3d's cell
	// updates are the paper's canonical conflict workload.
	for _, want := range []string{"JBB.counter", "MP3D.cells"} {
		found := false
		for _, g := range res.Observed {
			if g == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("expected %s among observed conflict granules; got %v", want, res.Observed)
		}
	}
	if res.Precision <= 0 || res.Precision > 1 {
		t.Errorf("precision = %v, want (0, 1]", res.Precision)
	}
}

func TestCoveredRules(t *testing.T) {
	predicted := map[string]bool{"JBB.counter": true}
	known := map[string]bool{"JBB.counter": true, "Swim.gridA": true}
	cases := []struct {
		name    string
		granule string
		top     bool
		want    bool
	}{
		{"predicted by name", "JBB.counter", false, true},
		{"known but unpaired, top is no excuse", "Swim.gridA", true, false},
		{"unknown label needs top", "Tree.arena", true, true},
		{"unknown label without top", "Tree.arena", false, false},
		{"unlabeled needs top", "", true, true},
		{"unlabeled without top", "", false, false},
		{"runtime-internal always exempt", "runtime.fallbackLock", false, true},
	}
	for _, c := range cases {
		o := Observation{Granule: c.granule}
		if got := covered(o, predicted, known, c.top); got != c.want {
			t.Errorf("%s: covered = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestLoadStaticMapRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := LoadStaticMap(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file: want error")
	}
	if _, err := LoadStaticMap(write("garbage.json", "{nope")); err == nil {
		t.Error("malformed JSON: want error")
	}
	if _, err := LoadStaticMap(write("schema.json", `{"schema":2,"blocks":[{}]}`)); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong schema: got %v, want schema error", err)
	}
	if _, err := LoadStaticMap(write("empty.json", `{"schema":1,"blocks":[]}`)); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("empty map: got %v, want empty-map error", err)
	}
}
