// Package tmdiff cross-validates the static conflict map produced by
// tmlint's conflictpairs analyzer against tmprof's runtime conflict
// attribution. It runs the full workload suite under each engine, maps
// every granule the profiler attributes a data conflict to back to its
// labeled memory region (core.Machine.LabelRegion), and checks the
// soundness obligation: every runtime conflict granule must appear in
// the static may-conflict prediction (directly by name, or covered by
// the ⊤ element for accesses the analysis could not resolve). Precision
// — how many predicted granules ever conflict in practice — is measured
// and reported but not gated: a may-analysis is allowed to over-predict,
// never to under-predict.
package tmdiff

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"tmisa/internal/analysis/tmlint"
	"tmisa/internal/core"
	"tmisa/internal/mem"
	"tmisa/internal/tmprof"
	"tmisa/internal/workloads"
)

// dataConflictCauses are the tmprof violation causes that denote a true
// data conflict between concurrent accesses — as opposed to
// "fallback:*" causes, which record capacity/contention fallback
// transitions, not conflicting granule traffic.
var dataConflictCauses = map[string]bool{
	"lazy-commit": true,
	"eager-load":  true,
	"eager-store": true,
	"nt-load":     true,
	"nt-store":    true,
}

// runtimePrefix marks region labels owned by the machine/runtime itself
// (the hybrid engine's fallback lock). Conflicts there are the
// implementation of the architecture, mirroring the machine-package
// trust boundary on the static side, and are exempt from the soundness
// obligation.
const runtimePrefix = "runtime."

// Observation is one runtime conflict granule from one run of the
// matrix, resolved to its labeled region.
type Observation struct {
	Workload   string   `json:"workload"`
	Engine     string   `json:"engine"`
	Granule    string   `json:"granule"` // region label; "" when unlabeled
	Addr       mem.Addr `json:"addr"`
	Violations uint64   `json:"violations"`
	Causes     []string `json:"causes"`
}

func (o Observation) String() string {
	name := o.Granule
	if name == "" {
		name = fmt.Sprintf("<unlabeled %#x>", uint64(o.Addr))
	}
	return fmt.Sprintf("%s/%s: %s (%d violations: %s)",
		o.Workload, o.Engine, name, o.Violations, strings.Join(o.Causes, ","))
}

// Result is the differential verdict.
type Result struct {
	// Predicted is the static may-conflict granule set (names only).
	Predicted []string `json:"predicted"`
	// PredictedTop records whether ⊤ appears in any static pair.
	PredictedTop bool `json:"predictedTop"`
	// Observed is every distinct labeled granule with a runtime data
	// conflict anywhere in the matrix.
	Observed []string `json:"observed"`
	// Missing are runtime conflicts the static map does not cover — any
	// entry here is a soundness violation.
	Missing []Observation `json:"missing,omitempty"`
	// Unobserved are predicted granules that never conflicted at
	// runtime: the imprecision of the may-analysis.
	Unobserved []string `json:"unobserved,omitempty"`
	// Precision is |Predicted ∩ Observed| / |Predicted|.
	Precision float64 `json:"precision"`
	// Runs is the number of machine runs in the matrix.
	Runs int `json:"runs"`
}

// Sound reports whether every runtime conflict was statically predicted.
func (r *Result) Sound() bool { return len(r.Missing) == 0 }

// Config shapes the dynamic matrix.
type Config struct {
	// CPUs per run; 0 means the core default (8).
	CPUs int
	// Quick restricts the matrix to the lazy engine (CI smoke vs the
	// full lazy/eager/hybrid sweep).
	Quick bool
	// Logf, when set, receives one line per run for progress reporting.
	Logf func(format string, args ...any)
}

// engineArm is one column of the dynamic matrix.
type engineArm struct {
	name string
	cfg  func() core.Config
}

// arms returns the engine columns. The hybrid arm reproduces the
// bounded-capacity configuration of the hybrid experiment (cap 16 write
// lines, TL2 fallback), so the workloads that fall back on capacity
// there exercise their STM paths here too.
func arms(quick bool) []engineArm {
	lazy := func() core.Config { return core.DefaultConfig() }
	if quick {
		return []engineArm{{"lazy", lazy}}
	}
	eager := func() core.Config {
		cfg := core.DefaultConfig()
		cfg.Engine = core.Eager
		return cfg
	}
	hybrid := func() core.Config {
		cfg := core.DefaultConfig()
		cfg.Fallback = core.TL2Fallback
		cfg.HTMRetryBudget = 4
		cfg.Cache.BoundedSpec = true
		cfg.Cache.MaxWriteLines = 16
		cfg.Cache.MaxReadLines = 64
		return cfg
	}
	return []engineArm{{"lazy", lazy}, {"eager", eager}, {"hybrid-cap16-tl2", hybrid}}
}

// LoadStaticMap reads a -conflicts JSON file written by cmd/tmlint.
func LoadStaticMap(path string) (*tmlint.ConflictMap, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cm tmlint.ConflictMap
	if err := json.Unmarshal(data, &cm); err != nil {
		return nil, fmt.Errorf("tmdiff: parsing %s: %w", path, err)
	}
	if cm.Schema != 1 {
		return nil, fmt.Errorf("tmdiff: %s: unsupported conflict-map schema %d", path, cm.Schema)
	}
	if len(cm.Blocks) == 0 {
		return nil, fmt.Errorf("tmdiff: %s: empty conflict map (wrong lint scope?)", path)
	}
	return &cm, nil
}

// Run executes the dynamic matrix and checks it against the static map.
func Run(cm *tmlint.ConflictMap, cfg Config) (*Result, error) {
	predicted, top := cm.PredictedGranules()
	res := &Result{PredictedTop: top}
	for g := range predicted {
		res.Predicted = append(res.Predicted, g)
	}
	sort.Strings(res.Predicted)

	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	// known are the granule names the static analysis resolved anywhere
	// (pairs or not): for these, ⊤ is no excuse — a named granule the
	// analysis saw but failed to pair is a genuine soundness miss.
	known := make(map[string]bool, len(cm.Granules))
	for g := range cm.Granules {
		known[g] = true
	}
	observed := make(map[string]bool)
	for _, e := range workloads.Suite() {
		for _, arm := range arms(cfg.Quick) {
			obs, err := runOne(e, arm, cfg.CPUs)
			if err != nil {
				return nil, err
			}
			res.Runs++
			conflicts := 0
			for _, o := range obs {
				conflicts++
				if o.Granule != "" {
					observed[o.Granule] = true
				}
				if covered(o, predicted, known, top) {
					continue
				}
				res.Missing = append(res.Missing, o)
			}
			logf("tmdiff: %s/%s: %d conflict granule(s)", e.Name, arm.name, conflicts)
		}
	}

	for g := range observed {
		res.Observed = append(res.Observed, g)
	}
	sort.Strings(res.Observed)
	hits := 0
	for _, g := range res.Predicted {
		if observed[g] {
			hits++
		} else {
			res.Unobserved = append(res.Unobserved, g)
		}
	}
	if len(res.Predicted) > 0 {
		res.Precision = float64(hits) / float64(len(res.Predicted))
	}
	return res, nil
}

// covered applies the soundness rule to one observation. Runtime-
// internal granules are exempt (the machine-trust boundary, mirrored
// from the static side). A granule whose label the static analysis
// resolved must be predicted by name — falling back to ⊤ there would
// let the analysis silently drop known granules from pairs. Only
// unlabeled addresses and labels the analysis never resolved (the
// B-tree node arena, reached through loaded pointers) may lean on ⊤.
func covered(o Observation, predicted, known map[string]bool, top bool) bool {
	if strings.HasPrefix(o.Granule, runtimePrefix) {
		return true
	}
	if o.Granule != "" && known[o.Granule] {
		return predicted[o.Granule]
	}
	return top
}

// runOne executes one {workload, engine} cell and returns its runtime
// conflict observations.
func runOne(e workloads.SuiteEntry, arm engineArm, cpus int) (obs []Observation, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("tmdiff: %s/%s: %v", e.Name, arm.name, r)
		}
	}()
	cfg := arm.cfg()
	if cpus <= 0 {
		cpus = cfg.CPUs
	}
	col := tmprof.NewCollector(tmprof.Options{LineSize: cfg.Cache.LineSize})
	var mach *core.Machine
	workloads.ExecuteTraced(e.New(), cfg, cpus, func(m *core.Machine) {
		mach = m
		m.SetTracer(col.StartRun(e.Name + "/" + arm.name))
	})
	regions := mach.Regions()
	prof := col.Profile()
	for label, granules := range prof.GranuleMap(regions) {
		for _, g := range granules {
			causes := dataCauses(g)
			if len(causes) == 0 {
				continue // fallback-only or cause-free granule: no data conflict
			}
			obs = append(obs, Observation{
				Workload:   e.Name,
				Engine:     arm.name,
				Granule:    label,
				Addr:       g.Addr,
				Violations: g.Violations,
				Causes:     causes,
			})
		}
	}
	sort.Slice(obs, func(i, j int) bool { return obs[i].Addr < obs[j].Addr })
	return obs, nil
}

// dataCauses returns the granule's data-conflict causes, sorted.
func dataCauses(g *tmprof.Granule) []string {
	var out []string
	for c := range g.Causes {
		if dataConflictCauses[c] {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// Report renders the verdict for humans (the CI job's log).
func (r *Result) Report(w *strings.Builder) {
	fmt.Fprintf(w, "tmdiff: %d runs; %d predicted granule(s)", r.Runs, len(r.Predicted))
	if r.PredictedTop {
		w.WriteString(" (+⊤)")
	}
	fmt.Fprintf(w, "; %d observed conflicting at runtime\n", len(r.Observed))
	if r.Sound() {
		w.WriteString("soundness: PASS — every runtime conflict granule is statically predicted\n")
	} else {
		fmt.Fprintf(w, "soundness: FAIL — %d runtime conflict(s) not statically predicted:\n", len(r.Missing))
		for _, o := range r.Missing {
			fmt.Fprintf(w, "  MISSING %s\n", o)
		}
	}
	fmt.Fprintf(w, "precision: %.2f (%d/%d predicted granules observed)\n",
		r.Precision, len(r.Predicted)-len(r.Unobserved), len(r.Predicted))
	if len(r.Unobserved) > 0 {
		fmt.Fprintf(w, "predicted but never observed: %s\n", strings.Join(r.Unobserved, ", "))
	}
}
