package tmprof

// Chrome trace-event export. The produced JSON is the "JSON Object
// Format" of the trace-event spec — {"traceEvents": [...], ...} — which
// Perfetto and chrome://tracing load directly. Each collected run is one
// process (pid = run index, named by its label), each simulated CPU one
// thread. Timestamps carry simulated cycles verbatim in the ts/dur
// microsecond fields: the absolute unit is meaningless for a simulator,
// only the ratios matter, and 1 cycle = 1 us keeps the numbers readable.
// The full aggregate Profile rides along under the top-level "tmprof"
// key, so one file serves both the timeline viewer and `tmprof`'s
// contention report.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// traceEvent is one entry of the trace-event "traceEvents" array.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   uint64         `json:"ts"`
	Dur  *uint64        `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the exported top-level object.
type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
	Tmprof          *Profile     `json:"tmprof"`
}

// traceEvents flattens the profile's runs into trace-event entries:
// metadata names first, then every span/instant in collection order.
func (p *Profile) traceEvents() []traceEvent {
	var evs []traceEvent
	for pid, rp := range p.Runs {
		evs = append(evs, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": rp.Label},
		})
		for tid := 0; tid < rp.CPUs; tid++ {
			evs = append(evs, traceEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": fmt.Sprintf("cpu%d", tid)},
			})
		}
		for _, s := range rp.Spans {
			ev := traceEvent{Name: s.Name, Pid: pid, Tid: s.CPU, Ts: s.Start}
			if s.Note != "" {
				ev.Args = map[string]any{"note": s.Note}
			}
			if s.Instant {
				ev.Ph = "i"
				ev.S = "t" // thread-scoped instant
			} else {
				ev.Ph = "X"
				dur := s.Dur
				ev.Dur = &dur
			}
			evs = append(evs, ev)
		}
	}
	return evs
}

// WriteTrace writes the profile as trace-event JSON. Output is
// deterministic: runs in collection order, spans in emission order, and
// all JSON maps have sorted keys (encoding/json's map ordering).
func (p *Profile) WriteTrace(w io.Writer) error {
	f := traceFile{
		DisplayTimeUnit: "ns",
		TraceEvents:     p.traceEvents(),
		Tmprof:          p,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// WriteTraceFile writes the profile to path, creating or truncating it.
func (p *Profile) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("tmprof: writing %s: %w", path, err)
	}
	return f.Close()
}

// ReadTraceFile loads a profile back from a file WriteTrace produced.
func ReadTraceFile(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f traceFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("tmprof: parsing %s: %w", path, err)
	}
	if f.Tmprof == nil {
		return nil, fmt.Errorf("tmprof: %s has no \"tmprof\" aggregate section (not written by this tool?)", path)
	}
	return f.Tmprof, nil
}

// ValidateTraceJSON checks data is structurally valid trace-event JSON
// as this package emits it: displayTimeUnit present, a traceEvents
// array whose entries all carry name/ph/pid/tid, duration events ("X")
// carry dur, and instants carry a scope. Used by `tmprof -check` and the
// CI smoke job; it validates the interchange shape, not the semantics.
func ValidateTraceJSON(data []byte) error {
	var raw struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
		Tmprof          json.RawMessage   `json:"tmprof"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if raw.DisplayTimeUnit == "" {
		return fmt.Errorf("missing displayTimeUnit")
	}
	if raw.TraceEvents == nil {
		return fmt.Errorf("missing traceEvents array")
	}
	for i, msg := range raw.TraceEvents {
		var ev map[string]json.RawMessage
		if err := json.Unmarshal(msg, &ev); err != nil {
			return fmt.Errorf("traceEvents[%d]: not an object: %w", i, err)
		}
		var name, ph string
		if err := unmarshalField(ev, "name", &name); err != nil || name == "" {
			return fmt.Errorf("traceEvents[%d]: missing or invalid name", i)
		}
		if err := unmarshalField(ev, "ph", &ph); err != nil || ph == "" {
			return fmt.Errorf("traceEvents[%d] (%s): missing or invalid ph", i, name)
		}
		var pid, tid int
		if err := unmarshalField(ev, "pid", &pid); err != nil {
			return fmt.Errorf("traceEvents[%d] (%s): missing or invalid pid", i, name)
		}
		if err := unmarshalField(ev, "tid", &tid); err != nil {
			return fmt.Errorf("traceEvents[%d] (%s): missing or invalid tid", i, name)
		}
		switch ph {
		case "M": // metadata carries no timestamp
		case "X":
			var ts, dur uint64
			if err := unmarshalField(ev, "ts", &ts); err != nil {
				return fmt.Errorf("traceEvents[%d] (%s): duration event missing ts", i, name)
			}
			if err := unmarshalField(ev, "dur", &dur); err != nil {
				return fmt.Errorf("traceEvents[%d] (%s): duration event missing dur", i, name)
			}
		case "i":
			var ts uint64
			if err := unmarshalField(ev, "ts", &ts); err != nil {
				return fmt.Errorf("traceEvents[%d] (%s): instant missing ts", i, name)
			}
			var scope string
			if err := unmarshalField(ev, "s", &scope); err != nil || scope == "" {
				return fmt.Errorf("traceEvents[%d] (%s): instant missing scope", i, name)
			}
		default:
			return fmt.Errorf("traceEvents[%d] (%s): unexpected phase %q", i, name, ph)
		}
	}
	if raw.Tmprof == nil {
		return fmt.Errorf("missing tmprof aggregate section")
	}
	var p Profile
	if err := json.Unmarshal(raw.Tmprof, &p); err != nil {
		return fmt.Errorf("tmprof section does not parse as a profile: %w", err)
	}
	return nil
}

func unmarshalField(ev map[string]json.RawMessage, key string, dst any) error {
	msg, ok := ev[key]
	if !ok {
		return fmt.Errorf("missing %s", key)
	}
	return json.Unmarshal(msg, dst)
}
