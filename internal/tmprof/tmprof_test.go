package tmprof_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"tmisa/internal/core"
	"tmisa/internal/mem"
	"tmisa/internal/tmprof"
	"tmisa/internal/trace"
)

// contend runs a 2-CPU counter-increment contention kernel and returns
// the machine's stats report string (for determinism comparison).
func contend(t *testing.T, rec func(trace.Event)) string {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.CPUs = 2
	cfg.MaxCycles = 50_000_000
	m := core.NewMachine(cfg)
	if rec != nil {
		m.SetTracer(rec)
	}
	line := m.AllocLine()
	worker := func(p *core.Proc) {
		for i := 0; i < 25; i++ {
			p.Atomic(func(tx *core.Tx) {
				p.Store(line, p.Load(line)+1)
				p.Tick(20)
			})
		}
	}
	return m.Run(worker, worker).String()
}

func TestCollectorAttribution(t *testing.T) {
	col := tmprof.NewCollector(tmprof.Options{LineSize: 64})
	bare := contend(t, nil)
	profiled := contend(t, col.StartRun("contend"))
	if bare != profiled {
		t.Errorf("attaching the profiler changed the run:\nbare:\n%s\nprofiled:\n%s", bare, profiled)
	}

	p := col.Profile()
	if len(p.Runs) != 1 || p.Runs[0].Label != "contend" {
		t.Fatalf("runs = %+v, want one labeled \"contend\"", p.Runs)
	}
	rp := p.Runs[0]
	if rp.CPUs != 2 {
		t.Errorf("CPUs = %d, want 2", rp.CPUs)
	}
	if rp.Counts["rollback"] == 0 || rp.Counts["commit"] == 0 {
		t.Fatalf("counts missing rollbacks/commits: %v", rp.Counts)
	}
	if len(p.Granules) == 0 {
		t.Fatal("no granules attributed on a contention run")
	}
	var g *tmprof.Granule
	for _, cand := range p.Granules {
		if g == nil || cand.Wasted > g.Wasted {
			g = cand
		}
	}
	if g.Violations == 0 || g.Rollbacks == 0 || g.Wasted == 0 {
		t.Errorf("hottest granule lacks attribution: %+v", g)
	}
	if uint64(g.Addr)%64 != 0 {
		t.Errorf("granule %#x not folded to the 64-byte line", uint64(g.Addr))
	}
	if len(g.Pairs) == 0 {
		t.Errorf("hottest granule has no aggressor->victim edges")
	}
	for pair := range g.Pairs {
		if pair != "cpu0->cpu1" && pair != "cpu1->cpu0" {
			t.Errorf("unexpected pair key %q", pair)
		}
	}
	if len(g.Causes) == 0 {
		t.Errorf("hottest granule has no cause kinds")
	}
}

func TestSpanTimeline(t *testing.T) {
	col := tmprof.NewCollector(tmprof.Options{LineSize: 64})
	contend(t, col.StartRun("contend"))
	p := col.Profile()
	var commits, rollbacks, instants int
	for _, s := range p.Runs[0].Spans {
		if s.Instant {
			instants++
			continue
		}
		if !strings.HasPrefix(s.Name, "tx nl=") && s.Name != "backoff" {
			t.Errorf("unexpected span name %q", s.Name)
		}
		switch s.Note {
		case "commit", "closed-commit", "open-commit":
			commits++
		case "rollback":
			rollbacks++
			if s.Dur == 0 {
				t.Errorf("rollback span with zero duration: %+v", s)
			}
		}
	}
	if commits == 0 || rollbacks == 0 || instants == 0 {
		t.Errorf("timeline incomplete: commits=%d rollbacks=%d instants=%d", commits, rollbacks, instants)
	}
	if commits != int(p.Runs[0].Counts["commit"]+p.Runs[0].Counts["closed-commit"]) {
		t.Errorf("commit spans (%d) disagree with commit counts (%v)", commits, p.Runs[0].Counts)
	}
}

func TestMaxSpansBound(t *testing.T) {
	col := tmprof.NewCollector(tmprof.Options{LineSize: 64, MaxSpans: 10})
	contend(t, col.StartRun("contend"))
	p := col.Profile()
	rp := p.Runs[0]
	if len(rp.Spans) > 10 {
		t.Errorf("retained %d spans, bound was 10", len(rp.Spans))
	}
	if rp.DroppedSpans == 0 {
		t.Errorf("no spans reported dropped under a 10-span bound on a contention run")
	}
	// Aggregates keep counting past the timeline bound.
	if len(p.Granules) == 0 {
		t.Errorf("granule attribution stopped when the timeline clipped")
	}
}

func TestWriteTraceAndValidate(t *testing.T) {
	col := tmprof.NewCollector(tmprof.Options{LineSize: 64})
	contend(t, col.StartRun("contend"))
	p := col.Profile()

	var buf bytes.Buffer
	if err := p.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if err := tmprof.ValidateTraceJSON(buf.Bytes()); err != nil {
		t.Fatalf("emitted trace fails validation: %v", err)
	}
	for _, bad := range []string{
		`{}`,
		`{"traceEvents":[]}`,
		`{"displayTimeUnit":"ns","traceEvents":[{"ph":"X"}]}`,
		`{"displayTimeUnit":"ns","traceEvents":[{"name":"tx","ph":"X","pid":0,"tid":0,"ts":1}],"tmprof":{}}`,
		`{"displayTimeUnit":"ns","traceEvents":[],"tmprof":[1]}`,
	} {
		if err := tmprof.ValidateTraceJSON([]byte(bad)); err == nil {
			t.Errorf("ValidateTraceJSON accepted %s", bad)
		}
	}

	path := filepath.Join(t.TempDir(), "prof.json")
	if err := p.WriteTraceFile(path); err != nil {
		t.Fatalf("WriteTraceFile: %v", err)
	}
	back, err := tmprof.ReadTraceFile(path)
	if err != nil {
		t.Fatalf("ReadTraceFile: %v", err)
	}
	if len(back.Runs) != len(p.Runs) || len(back.Granules) != len(p.Granules) {
		t.Errorf("round-trip lost shape: %d/%d runs, %d/%d granules",
			len(back.Runs), len(p.Runs), len(back.Granules), len(p.Granules))
	}

	// Export is deterministic byte-for-byte across identical runs.
	col2 := tmprof.NewCollector(tmprof.Options{LineSize: 64})
	contend(t, col2.StartRun("contend"))
	var buf2 bytes.Buffer
	if err := col2.Profile().WriteTrace(&buf2); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("identical runs produced different trace bytes")
	}
}

func TestMerge(t *testing.T) {
	mk := func(label string) *tmprof.Profile {
		col := tmprof.NewCollector(tmprof.Options{LineSize: 64})
		contend(t, col.StartRun(label))
		return col.Profile()
	}
	a, b := mk("cell-a"), mk("cell-b")
	merged := tmprof.Merge(nil, a, nil, b)
	if got := len(merged.Runs); got != 2 {
		t.Fatalf("merged runs = %d, want 2", got)
	}
	if merged.Runs[0].Label != "cell-a" || merged.Runs[1].Label != "cell-b" {
		t.Errorf("merge reordered runs: %q, %q", merged.Runs[0].Label, merged.Runs[1].Label)
	}
	var aw, bw, mw uint64
	for _, g := range a.Granules {
		aw += g.Wasted
	}
	for _, g := range b.Granules {
		bw += g.Wasted
	}
	for _, g := range merged.Granules {
		mw += g.Wasted
	}
	if mw != aw+bw {
		t.Errorf("merged wasted %d != %d + %d", mw, aw, bw)
	}
	if tmprof.Merge(nil, nil) != nil {
		t.Error("all-nil merge should be nil")
	}
}

// TestFromLogTruncation pins the satellite-4 interaction: when a bounded
// trace ring wraps, FromLog's counts come from the ring's lifetime
// counters (exact despite eviction) while spans/granules cover only the
// retained window, and the profile says so.
func TestFromLogTruncation(t *testing.T) {
	log := trace.NewLog(64)
	contend(t, log.Record)
	if log.Total() <= uint64(log.Retained()) {
		t.Fatalf("kernel too small to wrap the ring: total=%d retained=%d", log.Total(), log.Retained())
	}
	p := tmprof.FromLog(log, "wrapped", 64)
	rp := p.Runs[0]
	for k := 0; k < trace.NumKinds; k++ {
		kind := trace.Kind(k)
		if got, want := rp.Counts[kind.String()], log.Count(kind); got != want {
			t.Errorf("count[%s] = %d, want lifetime %d", kind, got, want)
		}
	}
	var total uint64
	for _, n := range rp.Counts {
		total += n
	}
	if total != log.Total() {
		t.Errorf("summed counts %d != lifetime total %d", total, log.Total())
	}
	if len(rp.Spans) == 0 {
		t.Error("no spans recovered from the retained window")
	}
	found := false
	for _, n := range p.Notes {
		if strings.Contains(n, "retained") && strings.Contains(n, fmt.Sprint(log.Total())) {
			found = true
		}
	}
	if !found {
		t.Errorf("no truncation note naming the window; notes = %q", p.Notes)
	}

	// An unwrapped log carries no truncation note.
	small := trace.NewLog(1 << 20)
	contend(t, small.Record)
	if p2 := tmprof.FromLog(small, "whole", 64); len(p2.Notes) != 0 {
		t.Errorf("unexpected notes on an untruncated log: %q", p2.Notes)
	}
}

func TestNilCollector(t *testing.T) {
	var col *tmprof.Collector
	if rec := col.StartRun("x"); rec != nil {
		t.Error("nil collector returned a live tracer")
	}
	col.Note("ignored")
	if col.Profile() != nil {
		t.Error("nil collector returned a profile")
	}
}

func TestReport(t *testing.T) {
	col := tmprof.NewCollector(tmprof.Options{LineSize: 64})
	contend(t, col.StartRun("contend"))
	p := col.Profile()
	var buf bytes.Buffer
	p.Report(&buf, 5)
	out := buf.String()
	for _, want := range []string{
		"tmprof contention report",
		"granularity: 64-byte line",
		"top contended granules",
		"cpu",
		"wasted",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	// An empty profile still renders, with the conflict-free line.
	empty := tmprof.NewCollector(tmprof.Options{LineSize: 64})
	cfg := core.DefaultConfig()
	cfg.CPUs = 1
	m := core.NewMachine(cfg)
	m.SetTracer(empty.StartRun("quiet"))
	addr := m.AllocLine()
	m.Run(func(pr *core.Proc) {
		pr.Atomic(func(*core.Tx) { pr.Store(addr, 1) })
	})
	buf.Reset()
	empty.Profile().Report(&buf, 0)
	if !strings.Contains(buf.String(), "conflict-free") {
		t.Errorf("quiet report missing conflict-free line:\n%s", buf.String())
	}
}

// TestFallbackAttribution runs a hybrid machine whose transaction
// capacity-aborts and falls back, and checks the profiler surfaces the
// transition: a "fallback" count, a serialized-cycles window closed by
// the STM commit, a capacity violation cause, and a fallback cause on
// the driving granule.
func TestFallbackAttribution(t *testing.T) {
	col := tmprof.NewCollector(tmprof.Options{LineSize: 64})
	cfg := core.DefaultConfig()
	cfg.CPUs = 1
	cfg.MaxCycles = 50_000_000
	cfg.Fallback = core.SerialFallback
	cfg.Cache.BoundedSpec = true
	cfg.Cache.MaxWriteLines = 2
	m := core.NewMachine(cfg)
	m.SetTracer(col.StartRun("hybrid"))
	stride := cfg.Cache.LineSize
	base := m.Alloc(8 * 8)
	m.Run(func(p *core.Proc) {
		p.Atomic(func(tx *core.Tx) {
			for i := 0; i < 6; i++ {
				p.Store(base+mem.Addr(i*stride), 1)
			}
		})
	})

	p := col.Profile()
	rp := p.Runs[0]
	if rp.Counts["fallback"] != 1 {
		t.Fatalf("fallback count = %d, want 1 (counts: %v)", rp.Counts["fallback"], rp.Counts)
	}
	if rp.SerializedCycles == 0 {
		t.Fatalf("SerializedCycles = 0, want the STM attempt's span")
	}
	var stm, fbInstant bool
	for _, s := range rp.Spans {
		if s.Name == "stm" && s.Dur > 0 && s.Note == "serialized" {
			stm = true
		}
		if s.Name == "fallback" && s.Instant {
			fbInstant = true
		}
	}
	if !stm || !fbInstant {
		t.Fatalf("timeline missing stm span (%v) or fallback instant (%v)", stm, fbInstant)
	}
	var capacity, fallbackCause bool
	for _, g := range p.Granules {
		for k := range g.Causes {
			if k == "capacity" {
				capacity = true
			}
			if strings.HasPrefix(k, "fallback:") {
				fallbackCause = true
			}
		}
	}
	if !capacity || !fallbackCause {
		t.Fatalf("granule causes missing capacity (%v) or fallback (%v)", capacity, fallbackCause)
	}

	var buf bytes.Buffer
	p.Report(&buf, 5)
	if !strings.Contains(buf.String(), "hybrid fallbacks: 1") {
		t.Fatalf("report missing hybrid line:\n%s", buf.String())
	}
}
