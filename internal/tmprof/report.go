package tmprof

// Text contention report: the terminal-facing rendering of a Profile.
// The report leads with the cross-run totals, then the top-N contended
// granules ranked by wasted cycles — each with its violation-cause
// breakdown and aggressor->victim CPU edges — and closes with the
// unattributed ledger and any collection caveats.

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// DefaultTopN is how many contended granules Report shows by default.
const DefaultTopN = 10

// Report renders the profile as a text contention report. topN bounds
// the granule table (<= 0 selects DefaultTopN); when the table is
// clipped, the cut is stated so a short listing is never mistaken for a
// complete one.
func (p *Profile) Report(w io.Writer, topN int) {
	if topN <= 0 {
		topN = DefaultTopN
	}
	fmt.Fprintf(w, "tmprof contention report\n")

	var commits, rollbacks, violations, fallbacks, serialized uint64
	for _, rp := range p.Runs {
		commits += rp.Counts["commit"] + rp.Counts["closed-commit"]
		rollbacks += rp.Counts["rollback"]
		violations += rp.Counts["violation"]
		fallbacks += rp.Counts["fallback"]
		serialized += rp.SerializedCycles
	}
	gran := "word"
	if p.LineSize > 1 {
		gran = fmt.Sprintf("%d-byte line", p.LineSize)
	}
	var wasted uint64
	for _, g := range p.Granules {
		wasted += g.Wasted
	}
	wasted += p.Unattributed.Wasted
	fmt.Fprintf(w, "runs: %d  granularity: %s\n", len(p.Runs), gran)
	fmt.Fprintf(w, "commits: %d  rollbacks: %d  violations: %d  wasted cycles: %d\n",
		commits, rollbacks, violations, wasted)
	if fallbacks > 0 {
		fmt.Fprintf(w, "hybrid fallbacks: %d  serialized cycles (STM path): %d\n", fallbacks, serialized)
	}

	for _, rp := range p.Runs {
		fmt.Fprintf(w, "  run %-28s cpus=%d cycles=%d commits=%d rollbacks=%d",
			rp.Label, rp.CPUs, rp.EndCycle,
			rp.Counts["commit"]+rp.Counts["closed-commit"], rp.Counts["rollback"])
		if rp.Counts["fallback"] > 0 {
			fmt.Fprintf(w, " fallbacks=%d serialized=%d", rp.Counts["fallback"], rp.SerializedCycles)
		}
		if rp.DroppedSpans > 0 {
			fmt.Fprintf(w, " (timeline clipped: %d spans dropped)", rp.DroppedSpans)
		}
		fmt.Fprintln(w)
	}

	if len(p.Granules) == 0 {
		fmt.Fprintf(w, "\nno contended granules: every transaction ran conflict-free\n")
	} else {
		ranked := append([]*Granule(nil), p.Granules...)
		sort.Slice(ranked, func(i, j int) bool {
			a, b := ranked[i], ranked[j]
			if a.Wasted != b.Wasted {
				return a.Wasted > b.Wasted
			}
			if a.Violations != b.Violations {
				return a.Violations > b.Violations
			}
			return a.Addr < b.Addr
		})
		shown := len(ranked)
		if shown > topN {
			shown = topN
		}
		fmt.Fprintf(w, "\ntop contended granules (by wasted cycles):\n")
		fmt.Fprintf(w, "%4s %-14s %6s %6s %10s  %s\n", "#", "addr", "viol", "rbk", "wasted", "causes / aggressor->victim")
		for i := 0; i < shown; i++ {
			g := ranked[i]
			fmt.Fprintf(w, "%4d %-14s %6d %6d %10d  %s\n",
				i+1, fmt.Sprintf("%#x", uint64(g.Addr)), g.Violations, g.Rollbacks, g.Wasted,
				countsLine(g.Causes, 0))
			if pairs := countsLine(g.Pairs, maxPairsShown); pairs != "-" {
				fmt.Fprintf(w, "%4s %-14s %6s %6s %10s  %s\n", "", "", "", "", "", pairs)
			}
		}
		if shown < len(ranked) {
			fmt.Fprintf(w, "  ... %d more granules not shown (rerun with -top %d for all)\n",
				len(ranked)-shown, len(ranked))
		}
	}

	if p.Unattributed.Rollbacks > 0 {
		fmt.Fprintf(w, "\nunattributed rollbacks (aborts, injected faults): %d, wasting %d cycles\n",
			p.Unattributed.Rollbacks, p.Unattributed.Wasted)
	}
	for _, n := range p.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// maxPairsShown caps the aggressor->victim edges rendered per granule;
// a hot granule on 8 CPUs has up to 56 edges and the tail says little.
const maxPairsShown = 8

// countsLine renders a counter map as "k1:v1 k2:v2", descending by
// count then ascending by key, or "-" when empty. max > 0 truncates to
// the top entries with an explicit "+N more" marker.
func countsLine(m map[string]uint64, max int) string {
	if len(m) == 0 {
		return "-"
	}
	type kv struct {
		k string
		v uint64
	}
	kvs := make([]kv, 0, len(m))
	for k, v := range m {
		kvs = append(kvs, kv{k, v})
	}
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].v != kvs[j].v {
			return kvs[i].v > kvs[j].v
		}
		return kvs[i].k < kvs[j].k
	})
	dropped := 0
	if max > 0 && len(kvs) > max {
		dropped = len(kvs) - max
		kvs = kvs[:max]
	}
	parts := make([]string, len(kvs))
	for i, e := range kvs {
		parts[i] = fmt.Sprintf("%s:%d", e.k, e.v)
	}
	line := strings.Join(parts, " ")
	if dropped > 0 {
		line += fmt.Sprintf(" (+%d more edges)", dropped)
	}
	return line
}
