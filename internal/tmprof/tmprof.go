// Package tmprof aggregates trace.Event streams into conflict-attribution
// profiles: per-granule contention counters (who violated whom, over which
// line, how many cycles each rollback threw away) and per-transaction
// timelines exportable as Chrome trace-event JSON for Perfetto.
//
// A Collector attaches to one or more core.Machine runs via
// Machine.SetTracer(col.StartRun(label)); each run becomes one process row
// in the exported trace. The collector is a pure consumer — it never
// touches the machine and never advances simulated time — so a profiled
// run is cycle-identical to an unprofiled one. All methods are nil-safe on
// the receiver so call sites can thread an optional *Collector without
// guarding every touch.
package tmprof

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"tmisa/internal/mem"
	"tmisa/internal/trace"
	"tmisa/internal/tracebin"
)

// DefaultMaxSpans bounds the timeline kept per run; aggregate counters
// keep counting after the bound so attribution stays exact even when the
// timeline is clipped.
const DefaultMaxSpans = 50_000

// Options configures a Collector.
type Options struct {
	// LineSize is the conflict-granule size used to fold word addresses
	// into lines (<= 0 keeps word granularity).
	LineSize int
	// MaxSpans bounds timeline spans retained per run (0 selects
	// DefaultMaxSpans, negative disables the timeline entirely).
	MaxSpans int
	// Config is the core.Config.Describe fingerprint written to each
	// streamed run section (ignored unless events are streamed).
	Config string
	// Trace, when set, tees every consumed event into the binary stream
	// writer: each StartRun opens a run section there, so the stream and
	// the profile stay run-for-run aligned.
	Trace *tracebin.Writer
	// CaptureTrace tees events into an internal in-memory run-section
	// buffer instead, surfaced as Profile.TraceBin — the form the
	// parallel experiment runner can carry across cells and concatenate
	// in matrix order. Overrides Trace.
	CaptureTrace bool
}

// Span is one timeline entry: a transaction attempt (begin to
// commit/rollback), a backoff stall, or an instant marker (violation,
// abort, validate, handler dispatch).
type Span struct {
	// Name labels the Perfetto slice ("tx nl=1", "backoff", "violation").
	Name string `json:"name"`
	// CPU is the hardware thread the span ran on.
	CPU int `json:"cpu"`
	// Start is the span's start cycle; Dur its length in cycles.
	Start uint64 `json:"start"`
	Dur   uint64 `json:"dur"`
	// Instant marks zero-width markers rendered as trace instants.
	Instant bool `json:"instant,omitempty"`
	// Note carries the outcome ("commit", "rollback") or event detail
	// (cause kind, abort reason).
	Note string `json:"note,omitempty"`
}

// RunProfile is the per-machine-run slice of a Profile: one exported
// trace process, with its timeline and lifetime event counts.
type RunProfile struct {
	// Label names the run ("figure5/flat/p=4").
	Label string `json:"label"`
	// CPUs is the highest CPU index seen plus one.
	CPUs int `json:"cpus"`
	// EndCycle is the latest cycle any event reached.
	EndCycle uint64 `json:"endCycle"`
	// Counts are lifetime event counts by kind name.
	Counts map[string]uint64 `json:"counts"`
	// Spans is the retained timeline, in emission order.
	Spans []Span `json:"spans,omitempty"`
	// DroppedSpans counts timeline entries clipped by MaxSpans.
	DroppedSpans int `json:"droppedSpans,omitempty"`
	// SerializedCycles is the total cycles CPUs spent between a hybrid
	// fallback transition and that transaction's outermost commit or
	// rollback — time executing on the STM path rather than in hardware.
	SerializedCycles uint64 `json:"serializedCycles,omitempty"`
}

// Granule is the contention record for one conflict granule (a line, or
// a word under word tracking).
type Granule struct {
	// Addr is the granule address.
	Addr mem.Addr `json:"addr"`
	// Violations counts conflicts delivered over this granule.
	Violations uint64 `json:"violations"`
	// Rollbacks counts rollbacks whose cause address fell in this granule.
	Rollbacks uint64 `json:"rollbacks"`
	// Wasted is the total cycles those rollbacks discarded.
	Wasted uint64 `json:"wasted"`
	// Causes counts violations by cause kind ("lazy-commit",
	// "eager-store", "nt-load", ...).
	Causes map[string]uint64 `json:"causes,omitempty"`
	// Pairs counts violations by "cpuA->cpuB" aggressor->victim edge.
	Pairs map[string]uint64 `json:"pairs,omitempty"`
}

// Unattributed accumulates rollbacks with no cause granule (explicit
// aborts, injected faults) so the wasted-cycle ledger still balances.
type Unattributed struct {
	Rollbacks uint64 `json:"rollbacks"`
	Wasted    uint64 `json:"wasted"`
}

// Profile is the serializable aggregation: what the Chrome-trace export
// embeds under its "tmprof" key and what the report renderer reads.
type Profile struct {
	// LineSize is the granule-folding size used during collection.
	LineSize int `json:"lineSize"`
	// Runs are the collected machine runs, in collection (matrix) order.
	Runs []*RunProfile `json:"runs"`
	// Granules is the cross-run contention table, sorted by address.
	Granules []*Granule `json:"granules"`
	// Unattributed holds rollbacks with no cause granule.
	Unattributed Unattributed `json:"unattributed"`
	// Notes records collection caveats (ring-window truncation, ...).
	Notes []string `json:"notes,omitempty"`
	// TraceBin holds the captured binary run sections (Options.
	// CaptureTrace): headerless tracebin bytes that concatenate across
	// Merge in run order, ready to assemble behind one
	// tracebin.WriteHeader. It rides between goroutines on the in-memory
	// Profile but never serializes into the JSON export.
	TraceBin []byte `json:"-"`
}

// GranuleMap groups the profile's granules by the labeled memory region
// containing them (see core.Machine.LabelRegion); granules falling
// outside every labeled region collect under the empty-string key. The
// tmlint/tmprof differential uses this to compare runtime conflict
// attribution against the static conflict map's granule names.
func (p *Profile) GranuleMap(regions []mem.Region) map[string][]*Granule {
	out := make(map[string][]*Granule)
	for _, g := range p.Granules {
		name := mem.RegionName(regions, g.Addr)
		out[name] = append(out[name], g)
	}
	return out
}

// spanKey identifies one open transaction level on one CPU.
type spanKey struct {
	cpu, level int
}

// runState is a run's in-flight collection state.
type runState struct {
	rp   *RunProfile
	open map[spanKey]uint64 // open tx level -> begin cycle
	// fbStart tracks, per CPU, the cycle of the last hybrid fallback
	// transition whose STM attempt is still running; closed (and folded
	// into SerializedCycles) by the outermost commit or rollback.
	fbStart map[int]uint64
}

// Collector consumes event streams and aggregates them into a Profile.
type Collector struct {
	lineSize int
	maxSpans int
	config   string
	tw       *tracebin.Writer
	capture  *bytes.Buffer
	runs     []*runState
	granules map[mem.Addr]*Granule
	unattr   Unattributed
	notes    []string
}

// NewCollector returns a collector with the given options.
func NewCollector(opts Options) *Collector {
	if opts.MaxSpans == 0 {
		opts.MaxSpans = DefaultMaxSpans
	}
	c := &Collector{
		lineSize: opts.LineSize,
		maxSpans: opts.MaxSpans,
		config:   opts.Config,
		tw:       opts.Trace,
		granules: make(map[mem.Addr]*Granule),
	}
	if opts.CaptureTrace {
		c.capture = &bytes.Buffer{}
		c.tw = tracebin.NewSectionWriter(c.capture)
	}
	return c
}

// StartRun opens a new run labeled label and returns the tracer to pass
// to Machine.SetTracer. Returns nil on a nil collector, so call sites
// thread an optional profiler as
//
//	if rec := col.StartRun(label); rec != nil { m.SetTracer(rec) }
func (c *Collector) StartRun(label string) func(trace.Event) {
	if c == nil {
		return nil
	}
	rs := &runState{
		rp: &RunProfile{
			Label:  label,
			Counts: make(map[string]uint64),
		},
		open:    make(map[spanKey]uint64),
		fbStart: make(map[int]uint64),
	}
	c.runs = append(c.runs, rs)
	if c.tw != nil {
		stream := c.tw.StartRun(label, c.config, c.lineSize)
		return func(e trace.Event) {
			stream(e)
			c.consume(rs, e)
		}
	}
	return func(e trace.Event) { c.consume(rs, e) }
}

// Note appends a collection caveat surfaced by the report and export.
func (c *Collector) Note(format string, args ...any) {
	if c == nil {
		return
	}
	c.notes = append(c.notes, fmt.Sprintf(format, args...))
}

// granuleOf folds a word address to its conflict granule.
func (c *Collector) granuleOf(a mem.Addr) mem.Addr {
	if c.lineSize > 1 {
		return mem.LineAddr(a, c.lineSize)
	}
	return a
}

func (c *Collector) granule(a mem.Addr) *Granule {
	g := c.granules[a]
	if g == nil {
		g = &Granule{Addr: a, Causes: make(map[string]uint64), Pairs: make(map[string]uint64)}
		c.granules[a] = g
	}
	return g
}

// addSpan appends a timeline entry, honoring the per-run bound.
func (c *Collector) addSpan(rs *runState, s Span) {
	if c.maxSpans < 0 {
		return
	}
	if len(rs.rp.Spans) >= c.maxSpans {
		rs.rp.DroppedSpans++
		return
	}
	rs.rp.Spans = append(rs.rp.Spans, s)
}

// closeTx ends the open transaction span for (cpu, level) with the given
// outcome, if one is open.
func (c *Collector) closeTx(rs *runState, e trace.Event, outcome string) {
	k := spanKey{e.CPU, e.Level}
	start, ok := rs.open[k]
	if !ok {
		return
	}
	delete(rs.open, k)
	c.addSpan(rs, Span{
		Name:  fmt.Sprintf("tx nl=%d", e.Level),
		CPU:   e.CPU,
		Start: start,
		Dur:   e.Cycle - start,
		Note:  outcome,
	})
}

func (c *Collector) instant(rs *runState, e trace.Event, name, note string) {
	c.addSpan(rs, Span{Name: name, CPU: e.CPU, Start: e.Cycle, Instant: true, Note: note})
}

// closeFallback ends the open STM span on e's CPU at an outermost
// commit/rollback, attributing the serialized cycles to the run.
func (c *Collector) closeFallback(rs *runState, e trace.Event) {
	if e.Level != 1 {
		return
	}
	start, ok := rs.fbStart[e.CPU]
	if !ok {
		return
	}
	delete(rs.fbStart, e.CPU)
	dur := e.Cycle - start
	rs.rp.SerializedCycles += dur
	c.addSpan(rs, Span{Name: "stm", CPU: e.CPU, Start: start, Dur: dur, Note: "serialized"})
}

// consume folds one event into the run and cross-run aggregates.
func (c *Collector) consume(rs *runState, e trace.Event) {
	rp := rs.rp
	if end := e.Cycle + e.Dur; end > rp.EndCycle {
		rp.EndCycle = end
	}
	if e.CPU >= rp.CPUs {
		rp.CPUs = e.CPU + 1
	}
	rp.Counts[e.Kind.String()]++

	switch e.Kind {
	case trace.Begin:
		rs.open[spanKey{e.CPU, e.Level}] = e.Cycle
	case trace.Commit:
		outcome := "commit"
		if e.Open {
			outcome = "open-commit"
		}
		c.closeTx(rs, e, outcome)
		c.closeFallback(rs, e)
	case trace.ClosedCommit:
		c.closeTx(rs, e, "closed-commit")
	case trace.Rollback:
		c.closeTx(rs, e, "rollback")
		c.closeFallback(rs, e)
		if e.Addr != 0 {
			g := c.granule(c.granuleOf(e.Addr))
			g.Rollbacks++
			g.Wasted += e.Wasted
		} else {
			c.unattr.Rollbacks++
			c.unattr.Wasted += e.Wasted
		}
	case trace.Violation:
		g := c.granule(c.granuleOf(e.Addr))
		g.Violations++
		if e.Note != "" {
			g.Causes[e.Note]++
		}
		if e.By >= 0 {
			g.Pairs[fmt.Sprintf("cpu%d->cpu%d", e.By, e.CPU)]++
		}
		c.instant(rs, e, "violation", e.Note)
	case trace.Abort:
		c.instant(rs, e, "abort", e.Note)
	case trace.Validate:
		c.instant(rs, e, "validate", "")
	case trace.Handler:
		c.instant(rs, e, "handler", e.Note)
	case trace.Backoff:
		c.addSpan(rs, Span{Name: "backoff", CPU: e.CPU, Start: e.Cycle, Dur: e.Dur, Note: "backoff"})
	case trace.Fallback:
		// A hybrid transition: mark the instant (Note is "mode:cause"),
		// open the serialized-cycles window, and attribute the transition
		// to the granule that drove it when the cause has an address.
		c.instant(rs, e, "fallback", e.Note)
		rs.fbStart[e.CPU] = e.Cycle
		if e.Addr != 0 {
			g := c.granule(c.granuleOf(e.Addr))
			g.Causes["fallback:"+e.Note]++
		}
	}
}

// Profile snapshots the aggregation: dangling transaction spans are
// closed at the run's end cycle (outcome "unfinished"), and granules are
// emitted sorted by address so output is deterministic. Returns nil on a
// nil collector.
func (c *Collector) Profile() *Profile {
	if c == nil {
		return nil
	}
	p := &Profile{
		LineSize:     c.lineSize,
		Unattributed: c.unattr,
		Notes:        append([]string(nil), c.notes...),
	}
	for _, rs := range c.runs {
		// Close still-open levels deterministically: deepest first, so a
		// nest renders as properly stacked slices.
		keys := make([]spanKey, 0, len(rs.open))
		for k := range rs.open {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].cpu != keys[j].cpu {
				return keys[i].cpu < keys[j].cpu
			}
			return keys[i].level > keys[j].level
		})
		for _, k := range keys {
			start := rs.open[k]
			delete(rs.open, k)
			c.addSpan(rs, Span{
				Name:  fmt.Sprintf("tx nl=%d", k.level),
				CPU:   k.cpu,
				Start: start,
				Dur:   rs.rp.EndCycle - start,
				Note:  "unfinished",
			})
		}
		// Close dangling STM windows the same way so the serialized-cycle
		// ledger balances even on an unfinished run.
		cpus := make([]int, 0, len(rs.fbStart))
		for cpu := range rs.fbStart {
			cpus = append(cpus, cpu)
		}
		sort.Ints(cpus)
		for _, cpu := range cpus {
			start := rs.fbStart[cpu]
			delete(rs.fbStart, cpu)
			dur := rs.rp.EndCycle - start
			rs.rp.SerializedCycles += dur
			c.addSpan(rs, Span{Name: "stm", CPU: cpu, Start: start, Dur: dur, Note: "serialized (unfinished)"})
		}
		p.Runs = append(p.Runs, rs.rp)
	}
	for _, g := range c.granules {
		p.Granules = append(p.Granules, g)
	}
	sort.Slice(p.Granules, func(i, j int) bool { return p.Granules[i].Addr < p.Granules[j].Addr })
	if c.capture != nil {
		// A bytes.Buffer sink cannot fail, so Flush here only drains the
		// section writer's bufio layer.
		if err := c.tw.Flush(); err != nil {
			panic(fmt.Sprintf("tmprof: in-memory trace capture failed: %v", err))
		}
		p.TraceBin = append([]byte(nil), c.capture.Bytes()...)
	}
	return p
}

// FromStream rebuilds a profile from a binary event stream: one
// collector per run section (granule folding at the section's recorded
// lineSize), merged in stream order. Unlike FromLog's ring window, the
// stream holds every event of every run, so spans and granule
// attribution are exact at any run length — a profile built here from a
// streamed run is identical to the one the attached in-memory collector
// produced, including across the parallel runner's matrix-order merge.
func FromStream(r *tracebin.Reader) (*Profile, error) {
	var profiles []*Profile
	var cur *Collector
	var sink func(trace.Event)
	snap := func() {
		if cur != nil {
			profiles = append(profiles, cur.Profile())
		}
	}
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if rec.Start {
			snap()
			cur = NewCollector(Options{LineSize: rec.LineSize, Config: rec.Config})
			sink = cur.StartRun(rec.Label)
			continue
		}
		sink(rec.Event)
	}
	snap()
	if len(profiles) == 0 {
		return nil, fmt.Errorf("tmprof: stream from %q holds no runs", r.Source())
	}
	return Merge(profiles...), nil
}

// FromLog builds a single-run profile from an already-recorded bounded
// ring. Spans and granule attribution cover only the retained window;
// lifetime counts come from the ring's eviction-proof counters, and a
// note records the truncation when events were evicted. For exact
// attribution at any run length, stream the run to a .tmtrace file and
// use FromStream instead — the ring remains for interactive tail
// inspection, where bounded memory matters more than completeness.
func FromLog(log *trace.Log, label string, lineSize int) *Profile {
	c := NewCollector(Options{LineSize: lineSize})
	rec := c.StartRun(label)
	log.Do(rec)
	if retained := uint64(log.Retained()); log.Total() > retained {
		c.Note("run %q: ring retained %d of %d events; spans and granule attribution cover only that window (lifetime counts are exact)",
			label, retained, log.Total())
	}
	p := c.Profile()
	// Overwrite windowed counts with the ring's lifetime counters.
	rp := p.Runs[0]
	rp.Counts = make(map[string]uint64)
	for k := 0; k < trace.NumKinds; k++ {
		if n := log.Count(trace.Kind(k)); n > 0 {
			rp.Counts[trace.Kind(k).String()] = n
		}
	}
	return p
}

// Merge combines profiles in argument order into one: runs concatenate
// (preserving matrix order, which fixes exported pids), granule tables
// merge by address, and unattributed/note ledgers accumulate. Nil
// profiles are skipped; an all-nil merge returns nil.
func Merge(profiles ...*Profile) *Profile {
	var out *Profile
	granules := make(map[mem.Addr]*Granule)
	for _, p := range profiles {
		if p == nil {
			continue
		}
		if out == nil {
			out = &Profile{LineSize: p.LineSize}
		}
		out.Runs = append(out.Runs, p.Runs...)
		out.TraceBin = append(out.TraceBin, p.TraceBin...)
		out.Unattributed.Rollbacks += p.Unattributed.Rollbacks
		out.Unattributed.Wasted += p.Unattributed.Wasted
		out.Notes = append(out.Notes, p.Notes...)
		if p.LineSize != out.LineSize {
			out.Notes = append(out.Notes, fmt.Sprintf("merged profiles mix granule sizes (%d and %d); granule table keys are not comparable across them", out.LineSize, p.LineSize))
		}
		for _, g := range p.Granules {
			dst := granules[g.Addr]
			if dst == nil {
				dst = &Granule{Addr: g.Addr, Causes: make(map[string]uint64), Pairs: make(map[string]uint64)}
				granules[g.Addr] = dst
			}
			dst.Violations += g.Violations
			dst.Rollbacks += g.Rollbacks
			dst.Wasted += g.Wasted
			for k, v := range g.Causes {
				dst.Causes[k] += v
			}
			for k, v := range g.Pairs {
				dst.Pairs[k] += v
			}
		}
	}
	if out == nil {
		return nil
	}
	for _, g := range granules {
		out.Granules = append(out.Granules, g)
	}
	sort.Slice(out.Granules, func(i, j int) bool { return out.Granules[i].Addr < out.Granules[j].Addr })
	return out
}
