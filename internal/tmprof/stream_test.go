package tmprof_test

import (
	"bytes"
	"testing"

	"tmisa/internal/core"
	"tmisa/internal/tmprof"
	"tmisa/internal/tracebin"
)

// profileBytes renders the two consumer-facing serializations — the
// text contention report and the Perfetto trace-event JSON — whose
// byte equality is the "profiles identical" gate.
func profileBytes(t *testing.T, p *tmprof.Profile) ([]byte, []byte) {
	t.Helper()
	var report, export bytes.Buffer
	p.Report(&report, 10)
	if err := p.WriteTrace(&export); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	return report.Bytes(), export.Bytes()
}

// TestFromStreamMatchesCollector is the exactness gate at package level:
// a profile rebuilt from the captured binary stream must serialize
// byte-identically to the one the attached in-memory collector produced
// — same runs, counts, spans, granule attribution — with no truncation
// notes, because the stream holds every event.
func TestFromStreamMatchesCollector(t *testing.T) {
	col := tmprof.NewCollector(tmprof.Options{LineSize: 64, Config: "test-cfg", CaptureTrace: true})
	contend(t, col.StartRun("contend/a"))
	contend(t, col.StartRun("contend/b"))
	attached := col.Profile()
	if len(attached.TraceBin) == 0 {
		t.Fatal("CaptureTrace left TraceBin empty")
	}

	var file bytes.Buffer
	if err := tracebin.WriteHeader(&file, "test"); err != nil {
		t.Fatal(err)
	}
	file.Write(attached.TraceBin)
	r, err := tracebin.NewReader(bytes.NewReader(file.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := tmprof.FromStream(r)
	if err != nil {
		t.Fatalf("FromStream: %v", err)
	}
	if len(streamed.Notes) != 0 {
		t.Fatalf("streamed profile carries notes %q; stream attribution is exact", streamed.Notes)
	}

	aRep, aExp := profileBytes(t, attached)
	sRep, sExp := profileBytes(t, streamed)
	if !bytes.Equal(aRep, sRep) {
		t.Errorf("reports differ:\n--- attached\n%s\n--- streamed\n%s", aRep, sRep)
	}
	if !bytes.Equal(aExp, sExp) {
		t.Error("Perfetto exports differ between attached and streamed profiles")
	}
}

// TestFromStreamExternalWriter covers the tmsim path: events streamed
// straight to an external file writer (Options.Trace), not captured
// in-memory, rebuild to the same profile.
func TestFromStreamExternalWriter(t *testing.T) {
	var file bytes.Buffer
	w := tracebin.NewWriter(&file, "tmsim-test")
	col := tmprof.NewCollector(tmprof.Options{LineSize: 64, Config: "cfg", Trace: w})
	contend(t, col.StartRun("run"))
	attached := col.Profile()
	if err := w.Flush(); err != nil {
		t.Fatalf("stream writer: %v", err)
	}

	r, err := tracebin.NewReader(bytes.NewReader(file.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := tmprof.FromStream(r)
	if err != nil {
		t.Fatalf("FromStream: %v", err)
	}
	aRep, _ := profileBytes(t, attached)
	sRep, _ := profileBytes(t, streamed)
	if !bytes.Equal(aRep, sRep) {
		t.Errorf("reports differ:\n--- attached\n%s\n--- streamed\n%s", aRep, sRep)
	}
}

// TestMergeConcatenatesTraceBin pins the parallel-runner contract:
// merging per-cell profiles concatenates their captured run sections in
// argument (matrix) order, and the assembled stream still rebuilds the
// merged profile exactly.
func TestMergeConcatenatesTraceBin(t *testing.T) {
	var cells []*tmprof.Profile
	for _, label := range []string{"cell0", "cell1", "cell2"} {
		col := tmprof.NewCollector(tmprof.Options{LineSize: 64, CaptureTrace: true})
		contend(t, col.StartRun(label))
		cells = append(cells, col.Profile())
	}
	merged := tmprof.Merge(cells...)
	want := append(append(append([]byte(nil), cells[0].TraceBin...), cells[1].TraceBin...), cells[2].TraceBin...)
	if !bytes.Equal(merged.TraceBin, want) {
		t.Fatal("merged TraceBin is not the matrix-order concatenation of the cells'")
	}

	var file bytes.Buffer
	if err := tracebin.WriteHeader(&file, "merge"); err != nil {
		t.Fatal(err)
	}
	file.Write(merged.TraceBin)
	r, err := tracebin.NewReader(bytes.NewReader(file.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := tmprof.FromStream(r)
	if err != nil {
		t.Fatalf("FromStream: %v", err)
	}
	mRep, _ := profileBytes(t, merged)
	sRep, _ := profileBytes(t, streamed)
	if !bytes.Equal(mRep, sRep) {
		t.Errorf("merged report differs from streamed rebuild:\n--- merged\n%s\n--- streamed\n%s", mRep, sRep)
	}
}

// TestStreamCaptureDoesNotPerturb pins zero observer effect: a run with
// trace capture on is cycle-identical to an unprofiled run.
func TestStreamCaptureDoesNotPerturb(t *testing.T) {
	bare := contend(t, nil)
	col := tmprof.NewCollector(tmprof.Options{LineSize: 64, CaptureTrace: true})
	captured := contend(t, col.StartRun("x"))
	if bare != captured {
		t.Fatalf("trace capture changed the run:\n--- bare\n%s\n--- captured\n%s", bare, captured)
	}
}

// TestFallbackStreamRoundTrip runs the hybrid engine (Fallback events,
// serialized-cycle spans) through the capture+rebuild path.
func TestFallbackStreamRoundTrip(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.CPUs = 2
	cfg.Cache.BoundedSpec = true
	cfg.Cache.MaxWriteLines = 1
	cfg.Fallback = core.SerialFallback
	cfg.MaxCycles = 50_000_000
	col := tmprof.NewCollector(tmprof.Options{LineSize: cfg.Cache.LineSize, CaptureTrace: true})
	m := core.NewMachine(cfg)
	m.SetTracer(col.StartRun("hybrid"))
	l0, l1 := m.AllocLine(), m.AllocLine()
	worker := func(p *core.Proc) {
		for i := 0; i < 10; i++ {
			p.Atomic(func(tx *core.Tx) {
				p.Store(l0, p.Load(l0)+1)
				p.Store(l1, p.Load(l1)+1) // second line overflows MaxWriteLines
			})
		}
	}
	m.Run(worker, worker)
	attached := col.Profile()
	if attached.Runs[0].Counts["fallback"] == 0 {
		t.Fatal("hybrid kernel produced no fallback events; test is vacuous")
	}

	var file bytes.Buffer
	if err := tracebin.WriteHeader(&file, "hybrid"); err != nil {
		t.Fatal(err)
	}
	file.Write(attached.TraceBin)
	r, err := tracebin.NewReader(bytes.NewReader(file.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := tmprof.FromStream(r)
	if err != nil {
		t.Fatalf("FromStream: %v", err)
	}
	aRep, _ := profileBytes(t, attached)
	sRep, _ := profileBytes(t, streamed)
	if !bytes.Equal(aRep, sRep) {
		t.Errorf("hybrid reports differ:\n--- attached\n%s\n--- streamed\n%s", aRep, sRep)
	}
}
