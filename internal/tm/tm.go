// Package tm implements the transactional-state bookkeeping of the HTM:
// the Transaction Control Block (TCB) stack, per-nesting-level read- and
// write-sets, speculative versioning (the write-buffer of the lazy/TCC
// engine and the undo-log of the eager/LogTM-style engine), and the
// set-intersection logic behind conflict detection and the two open-nesting
// semantics (the paper's, and Moss–Hosking's for the ablation).
//
// Package core drives this state machine from the ISA level and owns
// timing; everything here is pure data-structure logic so it can be tested
// exhaustively in isolation.
package tm

import (
	"fmt"

	"tmisa/internal/mem"
)

// Status is the lifecycle state recorded in a transaction's xstatus word.
type Status int

const (
	Active Status = iota
	Validated
	Committed
	Aborted
)

func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Validated:
		return "validated"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Mode is the execution mode of a level: hardware transaction (the
// default), or one of the hybrid engine's STM fallback paths. The mode
// changes how core versions data and charges instrumentation; the
// conflict-set logic here is mode-blind — STM levels record read- and
// write-sets exactly like hardware ones, which is what lets hardware
// conflict detection see them.
type Mode int

const (
	// HTM is a hardware transaction.
	HTM Mode = iota
	// Serial is the serial-irrevocable global-lock fallback: in-place
	// stores with an undo log, validated (irrevocable) from birth.
	Serial
	// TL2 is the versioned-lock software fallback: untracked in the
	// cache (unbounded footprint) and paying per-access instrumentation.
	TL2
)

func (m Mode) String() string {
	switch m {
	case Serial:
		return "serial"
	case TL2:
		return "tl2"
	default:
		return "htm"
	}
}

// UndoRec is one undo-log entry: the word's value before the first write
// by a given nesting level (eager engine), or before an immediate store
// (both engines).
type UndoRec struct {
	Addr mem.Addr // word address
	Old  uint64
}

// Level is the transactional state of one nesting level: the speculative
// half of its TCB (Figure 2). The register checkpoint is realized by
// re-executing the level's closure; the handler stacks live in package
// core's Tx handle (with their costs charged per the paper's constants).
type Level struct {
	// NL is the 1-based nesting level.
	NL int
	// Open marks an open-nested transaction (xbegin_open).
	Open   bool
	Status Status
	// Mode is HTM for hardware transactions; the hybrid engine's
	// fallback paths set Serial or TL2 on outermost levels only (nested
	// transactions inside a fallback body are subsumed).
	Mode Mode

	// ReadSet and WriteSet hold cache-line addresses, the conflict
	// granularity of the paper's platform. They are allocated on first
	// use (nil means empty, which every reader of a Go map handles), so
	// a level only pays for the sets it actually populates.
	ReadSet  map[mem.Addr]struct{}
	WriteSet map[mem.Addr]struct{}

	// WBuf is the lazy engine's write-buffer: word address → speculative
	// value. Allocated on first buffered write, so eager-engine levels
	// (and read-only lazy levels) never carry one.
	WBuf map[mem.Addr]uint64

	// Undo is the eager engine's undo-log for this level, in program
	// order (rollback applies it in reverse). It also holds undo records
	// for imst immediate stores in both engines.
	Undo []UndoRec
	// undoLogged tracks which words this level has already logged, so
	// only the first write per level logs (the paper: "when a nested
	// transaction writes a cache line for the first time, we push the
	// previous value").
	undoLogged map[mem.Addr]struct{}

	// StartCycle is when xbegin executed, for wasted-work accounting.
	StartCycle uint64
}

// NewLevel creates an empty level. The set, buffer, and log maps are
// allocated lazily by the first recording call: an xbegin costs one
// struct allocation, not five (transaction-dense workloads execute
// millions of xbegins per run).
func NewLevel(nl int, open bool, start uint64) *Level {
	return &Level{NL: nl, Open: open, StartCycle: start}
}

// RecordRead adds a line to the read-set.
func (l *Level) RecordRead(line mem.Addr) {
	if l.ReadSet == nil {
		l.ReadSet = make(map[mem.Addr]struct{})
	}
	l.ReadSet[line] = struct{}{}
}

// RecordWrite adds a line to the write-set.
func (l *Level) RecordWrite(line mem.Addr) {
	if l.WriteSet == nil {
		l.WriteSet = make(map[mem.Addr]struct{})
	}
	l.WriteSet[line] = struct{}{}
}

// Release removes a line from the read-set (the release instruction). It
// reports whether the line was present.
func (l *Level) Release(line mem.Addr) bool {
	_, ok := l.ReadSet[line]
	delete(l.ReadSet, line)
	return ok
}

// BufferWrite stores a speculative value in the write-buffer (lazy).
func (l *Level) BufferWrite(word mem.Addr, v uint64) {
	if l.WBuf == nil {
		l.WBuf = make(map[mem.Addr]uint64)
	}
	l.WBuf[word] = v
}

// LogUndo records the old value of word if this level has not logged it
// yet (eager engine and imst). It reports whether a record was pushed.
func (l *Level) LogUndo(word mem.Addr, old uint64) bool {
	if _, done := l.undoLogged[word]; done {
		return false
	}
	if l.undoLogged == nil {
		l.undoLogged = make(map[mem.Addr]struct{})
	}
	l.undoLogged[word] = struct{}{}
	l.Undo = append(l.Undo, UndoRec{Addr: word, Old: old})
	return true
}

// HasLogged reports whether this level already holds an undo record for
// word.
func (l *Level) HasLogged(word mem.Addr) bool {
	_, ok := l.undoLogged[word]
	return ok
}

// UpdateUndo rewrites the restore-value of this level's record for word,
// used when an open-nested child commits a word an ancestor also wrote
// (Section 6.3.1: "we must update the log entry of the parent").
func (l *Level) UpdateUndo(word mem.Addr, v uint64) bool {
	found := false
	for i := range l.Undo {
		if l.Undo[i].Addr == word {
			l.Undo[i].Old = v
			found = true
		}
	}
	return found
}

// Footprint returns the combined number of distinct lines in the read- and
// write-sets, for capacity statistics.
func (l *Level) Footprint() int {
	n := len(l.ReadSet)
	for a := range l.WriteSet {
		if _, dup := l.ReadSet[a]; !dup {
			n++
		}
	}
	return n
}

// Stack is a processor's TCB stack: one Level per active nested
// transaction, outermost first.
type Stack struct {
	Levels []*Level
}

// Depth returns the current nesting depth (0 = not in a transaction).
func (s *Stack) Depth() int { return len(s.Levels) }

// Top returns the innermost level, or nil.
func (s *Stack) Top() *Level {
	if len(s.Levels) == 0 {
		return nil
	}
	return s.Levels[len(s.Levels)-1]
}

// At returns the level with 1-based nesting level nl.
func (s *Stack) At(nl int) *Level { return s.Levels[nl-1] }

// Push starts a nested transaction and returns its level.
func (s *Stack) Push(open bool, start uint64) *Level {
	l := NewLevel(len(s.Levels)+1, open, start)
	s.Levels = append(s.Levels, l)
	return l
}

// Pop removes the innermost level.
func (s *Stack) Pop() *Level {
	l := s.Top()
	if l == nil {
		panic("tm: Pop of empty TCB stack")
	}
	s.Levels = s.Levels[:len(s.Levels)-1]
	return l
}

// LookupSpec searches the write-buffers from innermost to outermost for a
// speculative value of word (lazy engine reads see their own and their
// ancestors' writes).
func (s *Stack) LookupSpec(word mem.Addr) (uint64, bool) {
	for i := len(s.Levels) - 1; i >= 0; i-- {
		if v, ok := s.Levels[i].WBuf[word]; ok {
			return v, true
		}
	}
	return 0, false
}

// ConflictMask returns a bitmask with bit (nl-1) set for every active
// level whose read-set or write-set intersects lines; this is the value
// hardware ORs into the victim's xvcurrent/xvpending registers
// (Section 4.6). Open levels are just as vulnerable as closed ones.
func (s *Stack) ConflictMask(lines map[mem.Addr]struct{}) uint32 {
	var mask uint32
	for _, l := range s.Levels {
		if l.Status != Active && l.Status != Validated {
			continue
		}
		if intersects(l.ReadSet, lines) || intersects(l.WriteSet, lines) {
			mask |= 1 << (l.NL - 1)
		}
	}
	return mask
}

// ConflictsWithLine reports whether any active level's read- or write-set
// contains the line, and the union mask of the levels that do. Used by the
// eager engine's per-access checks.
func (s *Stack) ConflictsWithLine(line mem.Addr, writersOnly bool) uint32 {
	var mask uint32
	for _, l := range s.Levels {
		if l.Status != Active && l.Status != Validated {
			continue
		}
		_, w := l.WriteSet[line]
		hit := w
		if !writersOnly {
			_, r := l.ReadSet[line]
			hit = hit || r
		}
		if hit {
			mask |= 1 << (l.NL - 1)
		}
	}
	return mask
}

func intersects(a, b map[mem.Addr]struct{}) bool {
	// Iterate the smaller set.
	if len(b) < len(a) {
		a, b = b, a
	}
	for k := range a {
		if _, ok := b[k]; ok {
			return true
		}
	}
	return false
}

// MergeClosedInto implements the closed-nested commit (Section 4.5,
// timeline step ❶❷): the child's speculative writes and read-/write-sets
// merge into the parent, and no update escapes to shared memory. The undo
// log is appended so an eventual parent rollback restores in FILO order
// ("log entries are automatically appended to those of its parent").
// It returns the number of lines merged, for the timing model.
func MergeClosedInto(parent, child *Level) int {
	merged := len(child.ReadSet) + len(child.WriteSet)
	for a := range child.ReadSet {
		parent.RecordRead(a)
	}
	for a := range child.WriteSet {
		parent.RecordWrite(a)
	}
	for w, v := range child.WBuf {
		parent.BufferWrite(w, v)
	}
	parent.Undo = append(parent.Undo, child.Undo...)
	if len(child.undoLogged) > 0 && parent.undoLogged == nil {
		parent.undoLogged = make(map[mem.Addr]struct{})
	}
	for w := range child.undoLogged {
		// The parent now owns the child's log records; mark the words so
		// the parent does not log a second (younger, wrong) record after
		// absorbing the child... it must still log words it never wrote.
		parent.undoLogged[w] = struct{}{}
	}
	return merged
}

// OpenSemantics selects how an open-nested commit treats ancestor sets.
type OpenSemantics int

const (
	// PaperOpen is this paper's semantics: ancestors whose read- or
	// write-set overlaps the child's write-set get their buffered data
	// updated, but no address is removed from any ancestor set and no
	// conflict is reported to them.
	PaperOpen OpenSemantics = iota
	// MossHoskingOpen is the alternative the paper argues against: the
	// committing child removes the lines it wrote from all ancestors'
	// read- and write-sets (an early-release mechanism). The A3 ablation
	// demonstrates the resulting atomicity anomaly.
	MossHoskingOpen
)

func (s OpenSemantics) String() string {
	if s == PaperOpen {
		return "paper"
	}
	return "moss-hosking"
}

// ApplyOpenCommitToAncestors updates every ancestor level (all levels
// below child on the stack) for the open-nested child's commit, per the
// selected semantics. committedValue returns the value the child made
// globally visible for a word (the child's write-buffer entry in the lazy
// engine; the current memory value in the eager engine, where the write
// already landed). It returns the number of undo entries rewritten (the
// Section 6.3.1 "expensive search" cost, charged by core).
func ApplyOpenCommitToAncestors(stack *Stack, child *Level, sem OpenSemantics, committedValue func(mem.Addr) uint64) int {
	rewrites := 0
	ancestors := stack.Levels[:child.NL-1]
	switch sem {
	case PaperOpen:
		for word := range child.WBuf {
			for _, anc := range ancestors {
				if _, ok := anc.WBuf[word]; ok {
					anc.WBuf[word] = committedValue(word)
				}
			}
		}
		// Eager engine: ancestors' undo records for words the child
		// committed must now restore the child's (permanent) values.
		for i := range child.Undo {
			word := child.Undo[i].Addr
			for _, anc := range ancestors {
				if anc.UpdateUndo(word, committedValue(word)) {
					rewrites++
				}
			}
		}
	case MossHoskingOpen:
		for line := range child.WriteSet {
			for _, anc := range ancestors {
				delete(anc.ReadSet, line)
				delete(anc.WriteSet, line)
			}
		}
		// Moss–Hosking also has to keep ancestor data coherent for the
		// words that remain buffered.
		for word := range child.WBuf {
			for _, anc := range ancestors {
				if _, ok := anc.WBuf[word]; ok {
					anc.WBuf[word] = committedValue(word)
				}
			}
		}
	}
	return rewrites
}
