package tm

import (
	"testing"
	"testing/quick"

	"tmisa/internal/mem"
)

func line(a mem.Addr) mem.Addr { return mem.LineAddr(a, 64) }

func TestStackPushPop(t *testing.T) {
	var s Stack
	if s.Depth() != 0 || s.Top() != nil {
		t.Fatal("fresh stack not empty")
	}
	l1 := s.Push(false, 10)
	l2 := s.Push(true, 20)
	if s.Depth() != 2 || s.Top() != l2 || s.At(1) != l1 {
		t.Fatal("stack shape wrong")
	}
	if l1.NL != 1 || l2.NL != 2 || !l2.Open || l1.Open {
		t.Fatalf("levels wrong: %+v %+v", l1, l2)
	}
	if s.Pop() != l2 || s.Depth() != 1 {
		t.Fatal("pop wrong")
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	var s Stack
	s.Pop()
}

func TestLookupSpecSeesInnermostVersion(t *testing.T) {
	var s Stack
	outer := s.Push(false, 0)
	inner := s.Push(false, 0)
	outer.BufferWrite(0x100, 1)
	if v, ok := s.LookupSpec(0x100); !ok || v != 1 {
		t.Fatal("child cannot see ancestor write")
	}
	inner.BufferWrite(0x100, 2)
	if v, _ := s.LookupSpec(0x100); v != 2 {
		t.Fatal("innermost version not preferred")
	}
	if _, ok := s.LookupSpec(0x200); ok {
		t.Fatal("phantom speculative value")
	}
}

func TestReleaseRemovesFromReadSetOnly(t *testing.T) {
	l := NewLevel(1, false, 0)
	l.RecordRead(line(0x100))
	l.RecordWrite(line(0x100))
	if !l.Release(line(0x100)) {
		t.Fatal("release missed present line")
	}
	if _, ok := l.ReadSet[line(0x100)]; ok {
		t.Fatal("read-set still holds released line")
	}
	if _, ok := l.WriteSet[line(0x100)]; !ok {
		t.Fatal("release must not touch the write-set")
	}
	if l.Release(line(0x900)) {
		t.Fatal("release of absent line reported true")
	}
}

func TestLogUndoFirstWritePerLevelOnly(t *testing.T) {
	l := NewLevel(1, false, 0)
	if !l.LogUndo(0x100, 7) {
		t.Fatal("first write did not log")
	}
	if l.LogUndo(0x100, 8) {
		t.Fatal("second write logged again")
	}
	if len(l.Undo) != 1 || l.Undo[0].Old != 7 {
		t.Fatalf("undo log wrong: %+v", l.Undo)
	}
}

func TestConflictMaskPerLevel(t *testing.T) {
	var s Stack
	l1 := s.Push(false, 0)
	l2 := s.Push(false, 0)
	l3 := s.Push(true, 0)
	l1.RecordRead(line(0x100))
	l2.RecordWrite(line(0x200))
	l3.RecordRead(line(0x300))

	probe := func(addrs ...mem.Addr) map[mem.Addr]struct{} {
		m := make(map[mem.Addr]struct{})
		for _, a := range addrs {
			m[line(a)] = struct{}{}
		}
		return m
	}
	if got := s.ConflictMask(probe(0x100)); got != 0b001 {
		t.Fatalf("mask = %03b, want 001", got)
	}
	if got := s.ConflictMask(probe(0x200, 0x300)); got != 0b110 {
		t.Fatalf("mask = %03b, want 110", got)
	}
	if got := s.ConflictMask(probe(0x900)); got != 0 {
		t.Fatalf("mask = %03b, want 0", got)
	}
	// A conflict hitting all levels at once (Section 4.6).
	l1.RecordRead(line(0x500))
	l2.RecordRead(line(0x500))
	l3.RecordRead(line(0x500))
	if got := s.ConflictMask(probe(0x500)); got != 0b111 {
		t.Fatalf("mask = %03b, want 111", got)
	}
}

func TestConflictMaskSkipsDeadLevels(t *testing.T) {
	var s Stack
	l := s.Push(false, 0)
	l.RecordRead(line(0x100))
	l.Status = Aborted
	if got := s.ConflictMask(map[mem.Addr]struct{}{line(0x100): {}}); got != 0 {
		t.Fatalf("aborted level still conflicts: %03b", got)
	}
}

func TestConflictsWithLine(t *testing.T) {
	var s Stack
	l1 := s.Push(false, 0)
	l1.RecordRead(line(0x100))
	l1.RecordWrite(line(0x200))
	if s.ConflictsWithLine(line(0x100), false) != 0b1 {
		t.Fatal("read conflict missed")
	}
	if s.ConflictsWithLine(line(0x100), true) != 0 {
		t.Fatal("writersOnly matched a read")
	}
	if s.ConflictsWithLine(line(0x200), true) != 0b1 {
		t.Fatal("write conflict missed")
	}
}

func TestMergeClosedInto(t *testing.T) {
	var s Stack
	parent := s.Push(false, 0)
	child := s.Push(false, 0)
	parent.RecordRead(line(0x100))
	parent.BufferWrite(0x100, 1)
	parent.RecordWrite(line(0x100))
	child.RecordRead(line(0x200))
	child.RecordWrite(line(0x300))
	child.BufferWrite(0x300, 3)
	child.BufferWrite(0x100, 9) // child overwrote a parent word
	child.LogUndo(0x300, 30)

	n := MergeClosedInto(parent, child)
	if n != 2 {
		t.Fatalf("merged %d lines, want 2", n)
	}
	if _, ok := parent.ReadSet[line(0x200)]; !ok {
		t.Fatal("read-set not merged")
	}
	if _, ok := parent.WriteSet[line(0x300)]; !ok {
		t.Fatal("write-set not merged")
	}
	if parent.WBuf[0x100] != 9 || parent.WBuf[0x300] != 3 {
		t.Fatalf("write-buffer not merged: %+v", parent.WBuf)
	}
	if len(parent.Undo) != 1 || parent.Undo[0] != (UndoRec{0x300, 30}) {
		t.Fatalf("undo not appended: %+v", parent.Undo)
	}
	// The parent must not re-log a word the child already logged.
	if parent.LogUndo(0x300, 99) {
		t.Fatal("parent re-logged a word inherited from the child")
	}
}

// TestMergePreservesFILOCorrectness: parent logs v0, child logs v1; a full
// rollback restoring in reverse order must end at v0.
func TestMergePreservesFILOCorrectness(t *testing.T) {
	var s Stack
	parent := s.Push(false, 0)
	child := s.Push(false, 0)
	parent.LogUndo(0x100, 0) // value before parent's write
	child.LogUndo(0x100, 1)  // value before child's write (parent's value)
	MergeClosedInto(parent, child)

	memVal := uint64(2) // the child's speculative value, now the parent's
	for i := len(parent.Undo) - 1; i >= 0; i-- {
		memVal = parent.Undo[i].Old
	}
	if memVal != 0 {
		t.Fatalf("FILO restore ended at %d, want 0", memVal)
	}
}

func TestPaperOpenCommitUpdatesAncestorData(t *testing.T) {
	var s Stack
	parent := s.Push(false, 0)
	child := s.Push(true, 0)
	parent.RecordWrite(line(0x100))
	parent.BufferWrite(0x100, 1)
	parent.RecordRead(line(0x200))
	child.RecordWrite(line(0x100))
	child.BufferWrite(0x100, 42)

	ApplyOpenCommitToAncestors(&s, child, PaperOpen, func(w mem.Addr) uint64 { return child.WBuf[w] })
	if parent.WBuf[0x100] != 42 {
		t.Fatalf("ancestor data = %d, want 42", parent.WBuf[0x100])
	}
	// Crucially, no set trimming: the parent still tracks both lines.
	if _, ok := parent.WriteSet[line(0x100)]; !ok {
		t.Fatal("paper semantics must not remove ancestor write-set entries")
	}
	if _, ok := parent.ReadSet[line(0x200)]; !ok {
		t.Fatal("unrelated read-set entry lost")
	}
}

func TestMossHoskingOpenCommitTrimsAncestorSets(t *testing.T) {
	var s Stack
	parent := s.Push(false, 0)
	child := s.Push(true, 0)
	parent.RecordRead(line(0x100))
	parent.RecordWrite(line(0x100))
	parent.RecordRead(line(0x200))
	child.RecordWrite(line(0x100))
	child.BufferWrite(0x100, 5)

	ApplyOpenCommitToAncestors(&s, child, MossHoskingOpen, func(w mem.Addr) uint64 { return child.WBuf[w] })
	if _, ok := parent.ReadSet[line(0x100)]; ok {
		t.Fatal("Moss–Hosking semantics must trim the ancestor read-set")
	}
	if _, ok := parent.WriteSet[line(0x100)]; ok {
		t.Fatal("Moss–Hosking semantics must trim the ancestor write-set")
	}
	if _, ok := parent.ReadSet[line(0x200)]; !ok {
		t.Fatal("untouched line must survive")
	}
}

func TestOpenCommitRewritesAncestorUndo(t *testing.T) {
	var s Stack
	parent := s.Push(false, 0)
	child := s.Push(true, 0)
	parent.LogUndo(0x100, 7) // parent wrote first; pre-value 7
	child.LogUndo(0x100, 8)  // child wrote too (pre-value 8 = parent's value)
	committed := map[mem.Addr]uint64{0x100: 99}
	n := ApplyOpenCommitToAncestors(&s, child, PaperOpen, func(w mem.Addr) uint64 { return committed[w] })
	if n != 1 {
		t.Fatalf("rewrote %d entries, want 1", n)
	}
	if parent.Undo[0].Old != 99 {
		t.Fatalf("parent undo restores %d, want the open-committed 99", parent.Undo[0].Old)
	}
}

func TestFootprint(t *testing.T) {
	l := NewLevel(1, false, 0)
	l.RecordRead(line(0x100))
	l.RecordWrite(line(0x100)) // same line: counted once
	l.RecordWrite(line(0x200))
	if got := l.Footprint(); got != 2 {
		t.Fatalf("footprint = %d, want 2", got)
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{Active: "active", Validated: "validated", Committed: "committed", Aborted: "aborted"} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", int(s), s.String())
		}
	}
}

// Property: merging child sets into the parent yields exactly the union.
func TestQuickMergeIsUnion(t *testing.T) {
	f := func(parentLines, childLines []uint16) bool {
		var s Stack
		parent := s.Push(false, 0)
		child := s.Push(false, 0)
		want := make(map[mem.Addr]struct{})
		for _, a := range parentLines {
			parent.RecordRead(line(mem.Addr(a)))
			want[line(mem.Addr(a))] = struct{}{}
		}
		for _, a := range childLines {
			child.RecordRead(line(mem.Addr(a)))
			want[line(mem.Addr(a))] = struct{}{}
		}
		MergeClosedInto(parent, child)
		if len(parent.ReadSet) != len(want) {
			return false
		}
		for a := range want {
			if _, ok := parent.ReadSet[a]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: undo-log FILO replay restores the exact initial memory image
// after an arbitrary write sequence at one level.
func TestQuickUndoRestoresInitialImage(t *testing.T) {
	f := func(writes []struct {
		A uint8
		V uint64
	}) bool {
		m := mem.New()
		initial := make(map[mem.Addr]uint64)
		l := NewLevel(1, false, 0)
		for _, w := range writes {
			a := mem.WordAlign(mem.Addr(w.A) * 8)
			if _, seen := initial[a]; !seen {
				initial[a] = m.Load(a)
			}
			l.LogUndo(a, m.Load(a))
			m.Store(a, w.V)
		}
		for i := len(l.Undo) - 1; i >= 0; i-- {
			m.Store(l.Undo[i].Addr, l.Undo[i].Old)
		}
		for a, v := range initial {
			if m.Load(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: ConflictMask bit i is set iff level i+1's sets intersect the
// probe, for random small configurations.
func TestQuickConflictMaskMatchesNaive(t *testing.T) {
	f := func(sets [3][]uint8, probe []uint8) bool {
		var s Stack
		for i := 0; i < 3; i++ {
			l := s.Push(i == 2, 0)
			for _, a := range sets[i] {
				if a%2 == 0 {
					l.RecordRead(line(mem.Addr(a) * 64))
				} else {
					l.RecordWrite(line(mem.Addr(a) * 64))
				}
			}
		}
		pm := make(map[mem.Addr]struct{})
		for _, a := range probe {
			pm[line(mem.Addr(a)*64)] = struct{}{}
		}
		got := s.ConflictMask(pm)
		var want uint32
		for i, l := range s.Levels {
			hit := false
			for a := range pm {
				if _, ok := l.ReadSet[a]; ok {
					hit = true
				}
				if _, ok := l.WriteSet[a]; ok {
					hit = true
				}
			}
			if hit {
				want |= 1 << i
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
