package workloads

import (
	"testing"

	"tmisa/internal/cache"
	"tmisa/internal/core"
	"tmisa/internal/mem"
)

// suite returns fresh instances of every Figure 5 workload.
func suite() []Workload {
	return []Workload{
		DefaultBarnes(),
		DefaultFMM(),
		DefaultMoldyn(),
		DefaultMP3D(),
		DefaultSwim(),
		DefaultTomcatv(),
		DefaultWater(),
		DefaultJBB(JBBClosed),
		DefaultJBB(JBBOpen),
	}
}

// TestWorkloadsVerifySequential: every workload's invariants hold on the
// sequential baseline (Execute panics on Verify failure).
func TestWorkloadsVerifySequential(t *testing.T) {
	for _, w := range suite() {
		t.Run(w.Name(), func(t *testing.T) {
			rep := ExecuteSequential(w, core.DefaultConfig())
			if rep.TotalCycles == 0 {
				t.Fatal("sequential run did no work")
			}
			if rep.Machine.TxBegins != 0 {
				t.Fatal("sequential baseline created transactions")
			}
		})
	}
}

// TestWorkloadsVerifyParallelNested: correctness under full nesting at
// 8 CPUs with the lazy engine (the paper's platform).
func TestWorkloadsVerifyParallelNested(t *testing.T) {
	for _, w := range suite() {
		t.Run(w.Name(), func(t *testing.T) {
			rep := Execute(w, core.DefaultConfig(), 8)
			if rep.Machine.TxCommits == 0 {
				t.Fatal("no transactions committed")
			}
		})
	}
}

// TestWorkloadsVerifyParallelFlattened: correctness with flattening.
func TestWorkloadsVerifyParallelFlattened(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Flatten = true
	for _, w := range suite() {
		t.Run(w.Name(), func(t *testing.T) {
			Execute(w, cfg, 8)
		})
	}
}

// TestWorkloadsVerifyEager: correctness under the eager/undo-log engine.
// Scientific subset only: the SPECjbb2000 warehouse thrashes under
// requester-wins eager resolution without software contention management
// (see EXPERIMENTS.md, ablation A2).
func TestWorkloadsVerifyEager(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Engine = core.Eager
	for _, w := range []Workload{DefaultMP3D(), DefaultWater(), DefaultMoldyn(), DefaultBarnes()} {
		t.Run(w.Name(), func(t *testing.T) {
			Execute(w, cfg, 4)
		})
	}
}

// TestWorkloadsDeterministic: identical configurations produce identical
// cycle counts.
func TestWorkloadsDeterministic(t *testing.T) {
	for _, mk := range []func() Workload{
		func() Workload { return DefaultMP3D() },
		func() Workload { return DefaultJBB(JBBClosed) },
	} {
		a := Execute(mk(), core.DefaultConfig(), 8)
		b := Execute(mk(), core.DefaultConfig(), 8)
		if a.TotalCycles != b.TotalCycles || a.Machine.Violations != b.Machine.Violations {
			t.Fatalf("%s nondeterministic: %d/%d vs %d/%d cycles/violations",
				mk().Name(), a.TotalCycles, a.Machine.Violations, b.TotalCycles, b.Machine.Violations)
		}
	}
}

// TestFigure5Shape asserts the qualitative Figure 5 results the paper
// reports: nesting never hurts materially, mp3d is by far the largest
// win, and SPECjbb2000-open beats its flattened baseline.
func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure5 shape check runs the full suite")
	}
	rows := map[string]Figure5Row{}
	for _, w := range suite() {
		rows[w.Name()] = MeasureFigure5(w, core.DefaultConfig(), 8)
	}
	for name, r := range rows {
		if r.SpeedupOverFlat < 0.90 {
			t.Errorf("%s: nesting hurt by more than 10%% (%.2fx)", name, r.SpeedupOverFlat)
		}
	}
	mp3d := rows["mp3d"].SpeedupOverFlat
	if mp3d < 3.0 {
		t.Errorf("mp3d nesting speedup = %.2fx, want the dominant bar (>= 3x; paper: 4.93x)", mp3d)
	}
	for name, r := range rows {
		if name != "mp3d" && r.SpeedupOverFlat > mp3d {
			t.Errorf("%s (%.2fx) exceeds mp3d (%.2fx); mp3d must dominate Figure 5", name, r.SpeedupOverFlat, mp3d)
		}
	}
	if open := rows["SPECjbb2000-open"].SpeedupOverFlat; open < 1.05 {
		t.Errorf("SPECjbb2000-open over flat = %.2fx, want a clear win (paper: 2.22x)", open)
	}
	if rows["SPECjbb2000-open"].SpeedupOverFlat < rows["SPECjbb2000-closed"].SpeedupOverFlat {
		t.Errorf("open (%.2fx) must beat closed (%.2fx), as in the paper",
			rows["SPECjbb2000-open"].SpeedupOverFlat, rows["SPECjbb2000-closed"].SpeedupOverFlat)
	}
}

// TestIOScalingShape asserts the Section 7.2 result: transactional I/O
// scales with CPUs while the serialize-on-I/O baseline saturates.
func TestIOScalingShape(t *testing.T) {
	tx, serial := MeasureIOScaling([]int{1, 4, 16}, core.DefaultConfig())
	if tx.Values[1] < 3.0 {
		t.Errorf("transactional I/O at 4 CPUs = %.2fx, want near-linear (>= 3x)", tx.Values[1])
	}
	if tx.Values[2] < 8.0 {
		t.Errorf("transactional I/O at 16 CPUs = %.2fx, want continued scaling (>= 8x)", tx.Values[2])
	}
	if serial.Values[2] > 5.0 {
		t.Errorf("serialized I/O at 16 CPUs = %.2fx, want saturation (< 5x)", serial.Values[2])
	}
	if tx.Values[2] < 2*serial.Values[2] {
		t.Errorf("transactional (%.2fx) should beat serialized (%.2fx) by >= 2x at 16 CPUs",
			tx.Values[2], serial.Values[2])
	}
}

// TestCondSyncCompletesOversubscribed: the watch/retry scheduler handles
// more threads than CPUs without lost wakeups.
func TestCondSyncCompletesOversubscribed(t *testing.T) {
	for _, pairs := range []int{2, 8, 16} {
		w := DefaultCondSyncBench(pairs, false)
		cfg := core.DefaultConfig()
		cfg.MaxCycles = 100_000_000
		Execute(w, cfg, 5) // panics on lost wakeups (livelock guard) or bad data
	}
}

// TestCondSyncPollingBaseline: the polling variant produces the same
// handoffs.
func TestCondSyncPollingBaseline(t *testing.T) {
	for _, pairs := range []int{2, 8} {
		w := DefaultCondSyncBench(pairs, true)
		Execute(w, core.DefaultConfig(), 5)
	}
}

// TestIOBenchExactLog: the transactional log contains exactly one record
// per operation despite violations.
func TestIOBenchExactLog(t *testing.T) {
	w := DefaultIOBench(false)
	rep := Execute(w, core.DefaultConfig(), 8)
	if rep.Machine.Syscalls == 0 {
		t.Fatal("no syscalls recorded")
	}
}

// TestJBBOpenReducesViolations: the open-nested order counter must remove
// a substantial share of the flat variant's violations.
func TestJBBOpenReducesViolations(t *testing.T) {
	flatCfg := core.DefaultConfig()
	flatCfg.Flatten = true
	flat := Execute(DefaultJBB(JBBOpen), flatCfg, 8)
	open := Execute(DefaultJBB(JBBOpen), core.DefaultConfig(), 8)
	if open.Machine.Violations >= flat.Machine.Violations {
		t.Errorf("open nesting did not reduce violations: %d -> %d",
			flat.Machine.Violations, open.Machine.Violations)
	}
}

// TestMP3DContainment: in nested mp3d, inner rollbacks must dominate
// outer rollbacks (the containment Figure 5 measures).
func TestMP3DContainment(t *testing.T) {
	rep := Execute(DefaultMP3D(), core.DefaultConfig(), 8)
	in, out := rep.Machine.InnerRollbacks, rep.Machine.OuterRollbacks
	if in == 0 {
		t.Fatal("no inner rollbacks; mp3d needs cell contention")
	}
	if in < 2*out {
		t.Errorf("inner rollbacks (%d) should dominate outer (%d) in nested mp3d", in, out)
	}
}

// TestChunkPartition covers the work-partitioning helper.
func TestChunkPartition(t *testing.T) {
	for _, tc := range []struct{ n, cpus int }{{10, 3}, {8, 8}, {5, 8}, {0, 4}, {7, 1}} {
		covered := make([]bool, tc.n)
		for id := 0; id < tc.cpus; id++ {
			lo, hi := chunk(tc.n, tc.cpus, id)
			if lo > hi {
				t.Fatalf("chunk(%d,%d,%d) = [%d,%d)", tc.n, tc.cpus, id, lo, hi)
			}
			for i := lo; i < hi; i++ {
				if covered[i] {
					t.Fatalf("item %d covered twice (n=%d cpus=%d)", i, tc.n, tc.cpus)
				}
				covered[i] = true
			}
		}
		for i, c := range covered {
			if !c {
				t.Fatalf("item %d not covered (n=%d cpus=%d)", i, tc.n, tc.cpus)
			}
		}
	}
}

// TestRNGDeterministicAndSpread: the workload PRNG is reproducible and
// roughly uniform.
func TestRNGDeterministicAndSpread(t *testing.T) {
	r1, r2 := newRNG(42), newRNG(42)
	buckets := make([]int, 8)
	for i := 0; i < 8000; i++ {
		a, b := r1.next(), r2.next()
		if a != b {
			t.Fatal("rng not deterministic")
		}
		buckets[a%8]++
	}
	for i, n := range buckets {
		if n < 800 || n > 1200 {
			t.Fatalf("bucket %d has %d of 8000 (poor spread)", i, n)
		}
	}
}

// TestBarrierSynchronizesPhases: no CPU may begin phase k+1 before all
// arrive at phase k.
func TestBarrierSynchronizesPhases(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.CPUs = 4
	m := core.NewMachine(cfg)
	bar := newBarrier(m, 4)
	arrivals := make([][]uint64, 3)
	worker := func(p *core.Proc) {
		for phase := 0; phase < 3; phase++ {
			p.Tick(100 * (p.ID() + 1)) // staggered work
			bar.wait(p, phase)
			arrivals[phase] = append(arrivals[phase], p.Now())
		}
	}
	m.Run(worker, worker, worker, worker)
	for phase := 0; phase < 2; phase++ {
		maxThis := uint64(0)
		for _, t := range arrivals[phase] {
			if t > maxThis {
				maxThis = t
			}
		}
		for _, tn := range arrivals[phase+1] {
			if tn < maxThis-500 {
				t.Fatalf("phase %d exit at %d before phase %d finished at %d", phase+1, tn, phase, maxThis)
			}
		}
	}
}

// TestVerifiersDetectCorruption: each workload's Verify must actually
// catch a corrupted final image (validating the validators).
func TestVerifiersDetectCorruption(t *testing.T) {
	for _, mk := range []func() Workload{
		func() Workload { return DefaultMP3D() },
		func() Workload { return DefaultSwim() },
		func() Workload { return DefaultWater() },
		func() Workload { return DefaultMoldyn() },
		func() Workload { return DefaultBarnes() },
		func() Workload { return DefaultFMM() },
		func() Workload { return DefaultTomcatv() },
		func() Workload { return DefaultJBB(JBBClosed) },
	} {
		w := mk()
		t.Run(w.Name(), func(t *testing.T) {
			cfg := core.DefaultConfig()
			cfg.CPUs = 2
			cfg.MaxCycles = 3_000_000_000
			m := core.NewMachine(cfg)
			w.Setup(m, 2)
			bodies := []func(*core.Proc){
				func(p *core.Proc) { w.Run(p, 2) },
				func(p *core.Proc) { w.Run(p, 2) },
			}
			m.Run(bodies...)
			if err := w.Verify(m); err != nil {
				t.Fatalf("clean run failed verification: %v", err)
			}
			// Corrupt the data region wholesale and re-verify: bumping
			// every nonzero word must break at least one checked
			// invariant in every workload.
			corrupted := 0
			for a := uint64(0x1_0000); a < 0x8_0000; a += 8 {
				if v := m.Mem().Load(mem.Addr(a)); v != 0 {
					m.Mem().Store(mem.Addr(a), v+1)
					corrupted++
				}
			}
			if corrupted == 0 {
				t.Skip("no nonzero words found to corrupt")
			}
			if err := w.Verify(m); err == nil {
				t.Fatal("verifier accepted a corrupted image")
			}
		})
	}
}

// TestCustomWorkloadParameters: non-default sizes still verify, guarding
// the kernels' partitioning and index arithmetic.
func TestCustomWorkloadParameters(t *testing.T) {
	mp := DefaultMP3D()
	mp.Particles, mp.Steps, mp.Group, mp.Cells = 40, 2, 3, 5
	sw := DefaultSwim()
	sw.N, sw.Steps = 12, 2
	tv := DefaultTomcatv()
	tv.N, tv.Steps = 10, 2
	wa := DefaultWater()
	wa.Molecules, wa.ChunkSize = 30, 7
	md := DefaultMoldyn()
	md.Particles, md.ChunkSize, md.Bins = 26, 5, 3
	bn := DefaultBarnes()
	bn.Bodies, bn.Chunk, bn.Regions = 30, 7, 3
	fm := DefaultFMM()
	fm.Cells, fm.Chunk = 30, 7
	jb := DefaultJBB(JBBOpen)
	jb.TotalOps, jb.Customers, jb.StockSKUs = 40, 32, 16

	for _, w := range []Workload{mp, sw, tv, wa, md, bn, fm, jb} {
		t.Run(w.Name(), func(t *testing.T) {
			// Odd CPU counts exercise uneven partitions.
			Execute(w, core.DefaultConfig(), 3)
		})
	}
}

// TestWorkloadsOnWordTracking: the suite stays correct at word
// granularity.
func TestWorkloadsOnWordTracking(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.WordTracking = true
	for _, w := range []Workload{DefaultMP3D(), DefaultMoldyn(), DefaultJBB(JBBClosed)} {
		t.Run(w.Name(), func(t *testing.T) {
			Execute(w, cfg, 8)
		})
	}
}

// TestWorkloadsOnMultitrackScheme: the suite stays correct under the
// multi-tracking cache scheme with eager merging.
func TestWorkloadsOnMultitrackScheme(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Cache.Scheme = cache.Multitrack
	cfg.Cache.LazyMerge = false
	for _, w := range []Workload{DefaultMP3D(), DefaultSwim(), DefaultJBB(JBBOpen)} {
		t.Run(w.Name(), func(t *testing.T) {
			Execute(w, cfg, 8)
		})
	}
}

// TestOracleIsPureObservation: attaching the oracle must not perturb the
// simulation — cycle counts and every machine counter stay identical with
// and without it. EXPERIMENTS.md asserts this ("pure observation"); this
// test enforces it, so oracle-checked runs measure the same machine the
// figures report.
// The sweep covers every memory model: under TSO and the relaxed
// reordering window the oracle additionally validates store-buffer
// axioms, and that extra checking must be just as invisible.
func TestOracleIsPureObservation(t *testing.T) {
	for _, model := range []core.MemModelKind{core.MemSC, core.MemTSO, core.MemRelaxed} {
		for _, mk := range []func() Workload{
			func() Workload { return DefaultMP3D() },
			func() Workload { return DefaultJBB(JBBOpen) },
		} {
			base := core.DefaultConfig()
			base.MemModel = model
			plain := Execute(mk(), base, 8)
			cfg := base
			cfg.Oracle = true
			cfg.OracleHistory = true
			checked := Execute(mk(), cfg, 8)
			if plain.TotalCycles != checked.TotalCycles {
				t.Errorf("%s under %s: oracle changed cycles: %d -> %d",
					mk().Name(), model, plain.TotalCycles, checked.TotalCycles)
			}
			if plain.Machine != checked.Machine {
				t.Errorf("%s under %s: oracle changed machine counters:\nplain:   %+v\nchecked: %+v",
					mk().Name(), model, plain.Machine, checked.Machine)
			}
		}
	}
}

// TestGoldenCycleCounts pins exact simulated cycle counts for the default
// configurations. The simulator is fully deterministic (including across
// processes: no Go map iteration order reaches simulated behaviour), so
// any change here is a real behavioural change of the model — which is
// fine, but must be deliberate: update the numbers together with
// EXPERIMENTS.md.
func TestGoldenCycleCounts(t *testing.T) {
	golden := []struct {
		mk   func() Workload
		want uint64
	}{
		{func() Workload { return DefaultMP3D() }, 60026},
		{func() Workload { return DefaultJBB(JBBClosed) }, 162263},
	}
	for _, g := range golden {
		w := g.mk()
		rep := Execute(w, core.DefaultConfig(), 8)
		if rep.TotalCycles != g.want {
			t.Errorf("%s: %d cycles, golden %d (deliberate model change? update goldens + EXPERIMENTS.md)",
				w.Name(), rep.TotalCycles, g.want)
		}
	}
}
