package workloads

import (
	"fmt"

	"tmisa/internal/core"
	"tmisa/internal/mem"
)

// Water is the synthetic equivalent of SPLASH water-nsquared: molecules
// with private intra-molecular computation and an inter-molecular
// potential-energy accumulation into two global reduction variables
// (inter-atomic and reaction-field potentials) at the end of each
// molecule chunk — the reduction-in-a-large-transaction pattern, at a
// lower conflict rate than swim because chunks are longer.
type Water struct {
	Molecules int
	Steps     int
	ChunkSize int
	MolCost   int // per-molecule intra-molecular instruction count

	mols       mem.Addr // 4 words per molecule: ox, oy, energy, pad
	potA, potR mem.Addr
}

// DefaultWater returns the evaluation's default size.
func DefaultWater() *Water {
	return &Water{Molecules: 128, Steps: 4, ChunkSize: 10, MolCost: 110}
}

func (w *Water) Name() string { return "water" }

func (w *Water) Setup(m *core.Machine, cpus int) {
	ls := m.Config().Cache.LineSize
	w.mols = m.AllocAligned(w.Molecules*4*mem.WordSize, ls)
	w.potA = m.AllocLine()
	w.potR = m.AllocLine()
	m.LabelRegion("Water.mols", w.mols, w.Molecules*4*mem.WordSize)
	m.LabelRegion("Water.potA", w.potA, ls)
	m.LabelRegion("Water.potR", w.potR, ls)
	raw := m.Mem()
	for i := 0; i < w.Molecules; i++ {
		base := w.mols + mem.Addr(i*4*mem.WordSize)
		raw.Store(base, uint64(i)*3+1)
		raw.Store(base+8, uint64(i)%11+2)
	}
}

// molContribution is the deterministic per-molecule, per-step potential
// contribution (integer so reductions are order-independent).
func molContribution(ox, oy, step uint64) (pa, pr uint64) {
	h := ox*2654435761 + oy*40503 + step*97
	return h % 1000, h % 777
}

func (w *Water) Run(p *core.Proc, cpus int) {
	lo, hi := chunk(w.Molecules, cpus, p.ID())
	for step := 0; step < w.Steps; step++ {
		for c := lo; c < hi; c += w.ChunkSize {
			cEnd := c + w.ChunkSize
			if cEnd > hi {
				cEnd = hi
			}
			p.Atomic(func(outer *core.Tx) {
				var la, lr uint64
				for i := c; i < cEnd; i++ {
					base := w.mols + mem.Addr(i*4*mem.WordSize)
					ox := p.Load(base)
					oy := p.Load(base + 8)
					// Intra-molecular force computation (private).
					p.Tick(w.MolCost)
					pa, pr := molContribution(ox, oy, uint64(step))
					p.Store(base+16, p.Load(base+16)+pa)
					la += pa
					lr += pr
				}
				// Global potential reduction (closed-nested, at the end):
				// the reaction-field correction is computed against the
				// current global values, so it runs inside the inner
				// transaction.
				p.Atomic(func(inner *core.Tx) {
					pa := p.Load(w.potA)
					pr := p.Load(w.potR)
					p.Tick(10)
					p.Store(w.potA, pa+la)
					p.Store(w.potR, pr+lr)
				})
			})
		}
	}
}

func (w *Water) Verify(m *core.Machine) error {
	var wantA, wantR uint64
	for step := 0; step < w.Steps; step++ {
		for i := 0; i < w.Molecules; i++ {
			ox := uint64(i)*3 + 1
			oy := uint64(i)%11 + 2
			pa, pr := molContribution(ox, oy, uint64(step))
			wantA += pa
			wantR += pr
		}
	}
	raw := m.Mem()
	if got := raw.Load(w.potA); got != wantA {
		return fmt.Errorf("potA = %d, want %d (lost reductions)", got, wantA)
	}
	if got := raw.Load(w.potR); got != wantR {
		return fmt.Errorf("potR = %d, want %d (lost reductions)", got, wantR)
	}
	return nil
}
