package workloads

import (
	"fmt"

	"tmisa/internal/core"
	"tmisa/internal/mem"
	"tmisa/internal/stats"
	"tmisa/internal/txrt"
)

// CondSyncBench is the conditional-scheduling benchmark: producer/consumer
// pairs hand items through single-slot mailboxes, synchronizing either
// with the Atomos-style watch/retry scheduler of Figure 3 (a dedicated
// scheduler CPU plus worker CPUs parking waiting threads) or with the
// polling baseline (waiters spin re-reading the flag in fresh
// transactions, burning cycles and bus bandwidth).
type CondSyncBench struct {
	// Pairs is the number of producer/consumer pairs.
	Pairs int
	// Items is the number of handoffs per pair.
	Items int
	// WorkCost is the instruction count to produce/consume one item.
	WorkCost int
	// ProducerDelay is the inter-arrival computation between produced
	// items (outside the transaction): consumers wait roughly this long
	// per item, which is where parked waiting beats spinning.
	ProducerDelay int
	// BackgroundChunks and ChunkCost define the independent background
	// work competing for CPUs: under watch/retry, parked waiters free
	// their CPUs for it; under polling, probe transactions burn the CPUs
	// instead.
	BackgroundChunks int
	ChunkCost        int
	// Polling selects the spin-wait baseline instead of watch/retry.
	Polling bool

	flags, vals    []mem.Addr
	consumed       [][]uint64
	backgroundDone int
	ts             *txrt.ThreadSys
	cs             *txrt.CondSync
}

// DefaultCondSyncBench returns the evaluation's default size.
func DefaultCondSyncBench(pairs int, polling bool) *CondSyncBench {
	return &CondSyncBench{
		Pairs: pairs, Items: 8, WorkCost: 200,
		ProducerDelay:    3000,
		BackgroundChunks: 48, ChunkCost: 600,
		Polling: polling,
	}
}

func (w *CondSyncBench) Name() string {
	mode := "watch-retry"
	if w.Polling {
		mode = "polling"
	}
	return fmt.Sprintf("condsync-%s-%dpairs", mode, w.Pairs)
}

func (w *CondSyncBench) Setup(m *core.Machine, cpus int) {
	w.flags = nil
	w.vals = nil
	w.backgroundDone = 0
	w.consumed = make([][]uint64, w.Pairs)
	for i := 0; i < w.Pairs; i++ {
		w.flags = append(w.flags, m.AllocLine())
		w.vals = append(w.vals, m.AllocLine())
		m.LabelRegion("CondSyncBench.flags", w.flags[i], 8)
		m.LabelRegion("CondSyncBench.vals", w.vals[i], 8)
	}
	if w.Polling {
		return
	}
	w.ts = txrt.NewThreadSys()
	w.cs = txrt.NewCondSync(m, w.ts)
	// Background work: many short threads so the dispatcher interleaves
	// them with woken waiters.
	for c := 0; c < w.BackgroundChunks; c++ {
		w.ts.Spawn(func(p *core.Proc, th *txrt.Thread) {
			p.Tick(w.ChunkCost)
			w.backgroundDone++
		})
	}
	for i := 0; i < w.Pairs; i++ {
		i := i
		w.ts.Spawn(func(p *core.Proc, th *txrt.Thread) { // consumer
			for k := 0; k < w.Items; k++ {
				var got uint64
				w.ts.AtomicWithRetry(th, func(p *core.Proc, tx *core.Tx) {
					w.cs.WaitUntil(p, th, tx, w.flags[i], func(v uint64) bool { return v != 0 })
					p.Store(w.flags[i], 0)
					p.Tick(w.WorkCost)
					got = p.Load(w.vals[i]) // recorded after commit: a violated
					// attempt must not leave Go-side effects behind
				})
				w.consumed[i] = append(w.consumed[i], got)
			}
		})
		w.ts.Spawn(func(p *core.Proc, th *txrt.Thread) { // producer
			for k := 0; k < w.Items; k++ {
				// th.Proc(), not the spawn-time p: the thread may have
				// migrated CPUs across a park.
				th.Proc().Tick(w.ProducerDelay) // item inter-arrival computation
				w.ts.AtomicWithRetry(th, func(p *core.Proc, tx *core.Tx) {
					w.cs.WaitUntil(p, th, tx, w.flags[i], func(v uint64) bool { return v == 0 })
					p.Tick(w.WorkCost)
					p.Store(w.vals[i], uint64(i*1000+k+1))
					p.Store(w.flags[i], 1)
				})
			}
		})
	}
}

// Run drives one CPU. For watch/retry, CPU 0 runs the scheduler and the
// rest dispatch threads (2*Pairs threads multiplexed over cpus-1 worker
// CPUs; waiting threads park and free their CPU). For polling, the same
// 2*Pairs producer/consumer roles are distributed round-robin over all
// CPUs, each CPU sweeping its roles with non-blocking attempts — the
// conventional spin approach, which burns its CPU while a role is not
// ready.
func (w *CondSyncBench) Run(p *core.Proc, cpus int) {
	if !w.Polling {
		if p.ID() == 0 {
			w.cs.SchedulerMain(p)
		} else {
			w.ts.Dispatch(p)
		}
		return
	}
	type role struct {
		pair     int
		consumer bool
		done     int
	}
	var mine []*role
	for r := 0; r < 2*w.Pairs; r++ {
		if r%cpus == p.ID() {
			mine = append(mine, &role{pair: r / 2, consumer: r%2 == 0})
		}
	}
	myChunks := 0
	for c := 0; c < w.BackgroundChunks; c++ {
		if c%cpus == p.ID() {
			myChunks++
		}
	}
	remaining := len(mine) * w.Items
	for remaining > 0 || myChunks > 0 {
		// One background chunk per sweep, interleaved with the probes
		// (the polling loop's useful work).
		if myChunks > 0 {
			p.Tick(w.ChunkCost)
			myChunks--
			w.backgroundDone++
		}
		progressed := false
		for _, ro := range mine {
			if ro.done == w.Items {
				continue
			}
			if !ro.consumer && p.Load(w.flags[ro.pair]) == 0 {
				// The slot is free: compute the next item (the same
				// inter-arrival work the watch/retry producer performs).
				p.Tick(w.ProducerDelay)
			}
			ok := false
			var got uint64
			taken := false
			p.Atomic(func(tx *core.Tx) {
				v := p.Load(w.flags[ro.pair])
				if ro.consumer {
					if v == 0 {
						return // not ready; commit the read-only probe
					}
					p.Store(w.flags[ro.pair], 0)
					p.Tick(w.WorkCost)
					got = p.Load(w.vals[ro.pair])
					taken = true
				} else {
					if v != 0 {
						return
					}
					p.Tick(w.WorkCost)
					p.Store(w.vals[ro.pair], uint64(ro.pair*1000+ro.done+1))
					p.Store(w.flags[ro.pair], 1)
				}
				ok = true
			})
			if ok {
				if taken {
					w.consumed[ro.pair] = append(w.consumed[ro.pair], got)
				}
				ro.done++
				remaining--
				progressed = true
			}
		}
		if !progressed && myChunks == 0 {
			p.Tick(30) // polling interval
		}
	}
}

func (w *CondSyncBench) Verify(m *core.Machine) error {
	if w.backgroundDone != w.BackgroundChunks {
		return fmt.Errorf("background chunks done = %d, want %d", w.backgroundDone, w.BackgroundChunks)
	}
	for i := 0; i < w.Pairs; i++ {
		if len(w.consumed[i]) != w.Items {
			return fmt.Errorf("pair %d consumed %d items, want %d", i, len(w.consumed[i]), w.Items)
		}
		for k, v := range w.consumed[i] {
			if v != uint64(i*1000+k+1) {
				return fmt.Errorf("pair %d item %d = %d, want %d (ordering violated)", i, k, v, i*1000+k+1)
			}
		}
	}
	return nil
}

// MeasureCondSyncScaling produces the Figure 7 series: handoff throughput
// (items per kilocycle) for watch/retry and polling across pair counts on
// a fixed CPU budget. With more threads than CPUs, parked waiters free
// their CPUs under watch/retry, while polling burns them.
func MeasureCondSyncScaling(pairCounts []int, cpus int, cfg core.Config) (watch, poll *stats.Series) {
	watch = &stats.Series{Name: "watch/retry scheduler"}
	poll = &stats.Series{Name: "polling baseline"}
	for _, pairs := range pairCounts {
		wr := DefaultCondSyncBench(pairs, false)
		rep := Execute(wr, cfg, cpus)
		watch.Add(fmt.Sprintf("%d", pairs),
			float64(pairs*wr.Items+wr.BackgroundChunks)*1000/float64(rep.TotalCycles))

		pb := DefaultCondSyncBench(pairs, true)
		rep = Execute(pb, cfg, cpus)
		poll.Add(fmt.Sprintf("%d", pairs),
			float64(pairs*pb.Items+pb.BackgroundChunks)*1000/float64(rep.TotalCycles))
	}
	return watch, poll
}
