package workloads

import (
	"fmt"
	"math"

	"tmisa/internal/core"
	"tmisa/internal/mem"
)

// Tomcatv is the synthetic equivalent of SPEC CPU2000 tomcatv: a vectorized
// mesh-generation relaxation over two coordinate arrays, speculatively
// parallelized by row blocks. Each block transaction relaxes its rows of
// both arrays and folds two convergence statistics — the residual sum and
// the maximum correction — into global variables in a closed-nested
// transaction. The max-correction update writes only when the local
// maximum exceeds the global one, so its conflict rate is lower than
// swim's unconditional sums.
type Tomcatv struct {
	N        int // mesh edge
	Steps    int
	CellCost int

	xA, xB, yA, yB mem.Addr
	resSum         mem.Addr // residual sum (fixed-point integer)
	resMax         mem.Addr // max correction (fixed-point integer)
	bar            *barrier
}

// DefaultTomcatv returns the evaluation's default size.
func DefaultTomcatv() *Tomcatv {
	return &Tomcatv{N: 26, Steps: 3, CellCost: 12}
}

func (w *Tomcatv) Name() string { return "tomcatv" }

// fxScale converts the float corrections to fixed-point so the reduction
// is exact integer arithmetic (order-independent).
const fxScale = 1 << 20

func (w *Tomcatv) Setup(m *core.Machine, cpus int) {
	ls := m.Config().Cache.LineSize
	w.bar = newBarrier(m, cpus)
	n := w.N * w.N * mem.WordSize
	w.xA = m.AllocAligned(n, ls)
	w.xB = m.AllocAligned(n, ls)
	w.yA = m.AllocAligned(n, ls)
	w.yB = m.AllocAligned(n, ls)
	w.resSum = m.AllocLine()
	w.resMax = m.AllocLine()
	m.LabelRegion("Tomcatv.xA", w.xA, n)
	m.LabelRegion("Tomcatv.xB", w.xB, n)
	m.LabelRegion("Tomcatv.yA", w.yA, n)
	m.LabelRegion("Tomcatv.yB", w.yB, n)
	m.LabelRegion("Tomcatv.resSum", w.resSum, ls)
	m.LabelRegion("Tomcatv.resMax", w.resMax, ls)
	raw := m.Mem()
	for i := 0; i < w.N*w.N; i++ {
		raw.Store(w.xA+mem.Addr(i*mem.WordSize), mem.F2B(float64(i%13)*0.5))
		raw.Store(w.yA+mem.Addr(i*mem.WordSize), mem.F2B(float64(i%7)*0.75))
	}
}

func (w *Tomcatv) at(base mem.Addr, r, c int) mem.Addr {
	return base + mem.Addr((r*w.N+c)*mem.WordSize)
}

// relax is the shared kernel.
func relax(center, up, down float64) (nv float64, corr float64) {
	nv = 0.25*(up+down) + 0.5*center
	corr = math.Abs(nv - center)
	return nv, corr
}

func (w *Tomcatv) Run(p *core.Proc, cpus int) {
	xs, xd, ys, yd := w.xA, w.xB, w.yA, w.yB
	for step := 0; step < w.Steps; step++ {
		lo, hi := chunk(w.N-2, cpus, p.ID())
		lo, hi = lo+1, hi+1
		//tmlint:allow txfootprint -- band-sized stencil transaction; BENCH_hybrid measures its capacity fallback on purpose
		p.Atomic(func(outer *core.Tx) {
			localSum := uint64(0)
			localMax := uint64(0)
			for r := lo; r < hi; r++ {
				for c := 0; c < w.N; c++ {
					xc := mem.B2F(p.Load(w.at(xs, r, c)))
					xu := mem.B2F(p.Load(w.at(xs, r-1, c)))
					xdn := mem.B2F(p.Load(w.at(xs, r+1, c)))
					yc := mem.B2F(p.Load(w.at(ys, r, c)))
					yu := mem.B2F(p.Load(w.at(ys, r-1, c)))
					ydn := mem.B2F(p.Load(w.at(ys, r+1, c)))
					p.Tick(w.CellCost)
					nx, cx := relax(xc, xu, xdn)
					ny, cy := relax(yc, yu, ydn)
					p.Store(w.at(xd, r, c), mem.F2B(nx))
					p.Store(w.at(yd, r, c), mem.F2B(ny))
					localSum += uint64((cx + cy) * fxScale)
					if fx := uint64(cx * fxScale); fx > localMax {
						localMax = fx
					}
					if fy := uint64(cy * fxScale); fy > localMax {
						localMax = fy
					}
				}
			}
			// Residual reduction: closed-nested, at the end of the block.
			p.Atomic(func(inner *core.Tx) {
				p.Store(w.resSum, p.Load(w.resSum)+localSum)
				if p.Load(w.resMax) < localMax {
					p.Store(w.resMax, localMax)
				}
			})
		})
		w.bar.wait(p, step)
		xs, xd = xd, xs
		ys, yd = yd, ys
	}
}

func (w *Tomcatv) Verify(m *core.Machine) error {
	n := w.N
	x := make([]float64, n*n)
	y := make([]float64, n*n)
	for i := range x {
		x[i] = float64(i%13) * 0.5
		y[i] = float64(i%7) * 0.75
	}
	xb := make([]float64, n*n)
	yb := make([]float64, n*n)
	var wantSum, wantMax uint64
	for step := 0; step < w.Steps; step++ {
		for r := 1; r < n-1; r++ {
			for c := 0; c < n; c++ {
				nx, cx := relax(x[r*n+c], x[(r-1)*n+c], x[(r+1)*n+c])
				ny, cy := relax(y[r*n+c], y[(r-1)*n+c], y[(r+1)*n+c])
				xb[r*n+c], yb[r*n+c] = nx, ny
				wantSum += uint64((cx + cy) * fxScale)
				if fx := uint64(cx * fxScale); fx > wantMax {
					wantMax = fx
				}
				if fy := uint64(cy * fxScale); fy > wantMax {
					wantMax = fy
				}
			}
		}
		x, xb = xb, x
		y, yb = yb, y
	}
	raw := m.Mem()
	if got := raw.Load(w.resSum); got != wantSum {
		return fmt.Errorf("residual sum = %d, want %d (lost reductions)", got, wantSum)
	}
	if got := raw.Load(w.resMax); got != wantMax {
		return fmt.Errorf("residual max = %d, want %d", got, wantMax)
	}
	return nil
}
