package workloads

import (
	"fmt"

	"tmisa/internal/btree"
	"tmisa/internal/core"
	"tmisa/internal/mem"
)

// JBBMode selects the SPECjbb2000 parallelization variant of Section 7.1.
type JBBMode int

const (
	// JBBClosed wraps every B-tree search/update in a closed-nested
	// transaction, so tree conflicts roll back only the tree operation.
	JBBClosed JBBMode = iota
	// JBBOpen keeps the flat structure but generates the global order ID
	// in an open-nested transaction: IDs must be unique, not sequential,
	// so no compensation is needed and counter conflicts vanish.
	JBBOpen
)

func (m JBBMode) String() string {
	if m == JBBClosed {
		return "closed"
	}
	return "open"
}

// JBB is the SPECjbb2000-style warehouse: customer tasks (new order,
// payment, order status) over shared B-trees holding customer, order, and
// stock information, a global order-ID counter, and per-district totals —
// parallelized within a single warehouse with one outer transaction per
// operation, exactly as the paper describes. Running it under
// Config.Flatten gives the conventional flat-transaction baseline (1.92x
// over sequential in the paper); JBBClosed and JBBOpen reproduce the
// 2.05x and 2.22x improvements over that baseline.
type JBB struct {
	Mode JBBMode

	Customers int
	StockSKUs int
	Districts int
	// TotalOps is the fixed operation count, partitioned across CPUs.
	TotalOps int
	// ItemsPerOrder is how many stock lines one new order touches.
	ItemsPerOrder int
	// ThinkCost is the per-operation business-logic instruction count.
	ThinkCost int
	// PreloadOrders is the warehouse's pre-existing order history.
	PreloadOrders int
	// HotPct is the percentage of payments going to the HotCustomers
	// frequent customers (TPC-C's skewed customer access).
	HotPct int
	// HotCustomers is the size of the frequent-customer set.
	HotCustomers int

	customers *btree.Tree
	stock     *btree.Tree
	orders    *btree.Tree
	counter   mem.Addr
	districts mem.Addr
	lineSize  int
	cpus      int
}

// DefaultJBB returns the evaluation's default size for the given mode.
func DefaultJBB(mode JBBMode) *JBB {
	return &JBB{
		Mode:          mode,
		Customers:     2048,
		StockSKUs:     1024,
		Districts:     2,
		TotalOps:      288,
		ItemsPerOrder: 4,
		ThinkCost:     150,
		PreloadOrders: 2048,
		HotPct:        97,
		HotCustomers:  2,
	}
}

func (w *JBB) Name() string { return "SPECjbb2000-" + w.Mode.String() }

func (w *JBB) Setup(m *core.Machine, cpus int) {
	w.cpus = cpus
	w.lineSize = m.Config().Cache.LineSize
	w.customers = btree.New(m)
	w.stock = btree.New(m)
	w.orders = btree.New(m)
	w.counter = m.AllocLine()
	w.districts = m.AllocAligned(w.Districts*w.lineSize, w.lineSize)
	m.LabelRegion("JBB.counter", w.counter, w.lineSize)
	m.LabelRegion("JBB.districts", w.districts, w.Districts*w.lineSize)

	// Populate the tables through the untimed setup processor so the tree
	// code itself lays out the initial image.
	loader := m.SetupProc()
	for i := 0; i < w.Customers; i++ {
		w.customers.Insert(loader, uint64(i)+1, 1000)
	}
	for i := 0; i < w.StockSKUs; i++ {
		w.stock.Insert(loader, uint64(i)+1, 1_000_000)
	}
	// The warehouse starts with a history of orders, so the orders tree
	// is deep and rightmost-spine splits are local (a fresh tree would
	// split at the root on nearly every insert, serializing everything).
	for i := 0; i < w.PreloadOrders; i++ {
		w.orders.Insert(loader, uint64(i%w.Districts)<<32|uint64(i+1), 0)
	}
	m.Mem().Store(w.counter, uint64(w.PreloadOrders)+1)
}

// opKind classifies warehouse operations.
type opKind int

const (
	opNewOrder opKind = iota
	opPayment
	opStatus
)

// opParams derives an operation's inputs deterministically from its
// global index, so re-executions replay identical inputs and Verify can
// recompute the expected final state.
func (w *JBB) opParams(op int) (kind opKind, customer uint64, district int, amount uint64, items []uint64, think int) {
	r := newRNG(uint64(op)*1099511628211 + 17)
	switch x := r.intn(100); {
	case x < 45:
		kind = opNewOrder
	case x < 90:
		kind = opPayment
	default:
		kind = opStatus
	}
	customer = uint64(r.intn(w.Customers)) + 1
	if kind == opPayment && r.intn(100) < w.HotPct {
		// Frequent customers concentrate payment traffic (spread over
		// distinct B-tree leaves).
		customer = uint64(r.intn(w.HotCustomers))*uint64(w.Customers/w.HotCustomers) + 1
	}
	district = r.intn(w.Districts)
	amount = uint64(r.intn(900)) + 100
	if kind == opNewOrder {
		for k := 0; k < w.ItemsPerOrder; k++ {
			items = append(items, uint64(r.intn(w.StockSKUs))+1)
		}
	}
	// Business-logic time varies per operation (data-dependent paths in
	// the real workload); without it the processors run in lockstep and
	// every commit mass-kills the whole commit queue.
	think = w.ThinkCost/2 + r.intn(w.ThinkCost*2)
	return
}

func (w *JBB) districtAddr(d int) mem.Addr { return w.districts + mem.Addr(d*w.lineSize) }

// treeOp wraps a B-tree operation in a closed-nested transaction under
// JBBClosed, or runs it inline otherwise.
func (w *JBB) treeOp(p *core.Proc, f func()) {
	if w.Mode == JBBClosed {
		p.Atomic(func(tx *core.Tx) { f() })
	} else {
		f()
	}
}

func (w *JBB) Run(p *core.Proc, cpus int) {
	lo, hi := chunk(w.TotalOps, cpus, p.ID())
	for op := lo; op < hi; op++ {
		kind, customer, district, amount, items, think := w.opParams(op)
		//tmlint:allow txfootprint -- order transactions span B-tree splits; BENCH_hybrid shows the cap-16 capacity fallback is intended
		p.Atomic(func(tx *core.Tx) {
			switch kind {
			case opNewOrder:
				// Business logic first: a long conflict-free prefix, as in
				// the real workload's order assembly.
				p.Tick(think)
				w.customers.Search(p, customer)
				// Reserve the order's stock in one B-tree transaction.
				w.treeOp(p, func() {
					for _, item := range items {
						qty, ok := w.stock.Search(p, item)
						if !ok {
							panic("jbb: missing stock item")
						}
						w.stock.Update(p, item, qty-1)
					}
				})
				// The global order ID: the open-nesting showcase.
				var orderID uint64
				if w.Mode == JBBOpen {
					// The ID increment is commutative and a skipped ID after
					// an outer abort is semantically harmless, so no
					// compensation is registered (the paper's Section 4.5
					// argument for open-nesting this exact counter).
					//tmlint:allow nesting -- commutative counter; a skipped ID after an outer abort is harmless
					p.AtomicOpen(func(open *core.Tx) {
						orderID = p.Load(w.counter)
						p.Store(w.counter, orderID+1)
					})
				} else {
					orderID = p.Load(w.counter)
					p.Store(w.counter, orderID+1)
				}
				// Orders cluster by district (TPC-C keys), so the hot
				// rightmost leaf is per district; the order row is followed
				// by its line-item row, widening the window between ID
				// generation and commit.
				key := uint64(district)<<32 | orderID
				w.treeOp(p, func() { w.orders.Insert(p, key, customer<<16|amount) })
				// District year-to-date totals and statistics update: the
				// hot shared line, last before commit, in its own nested
				// transaction.
				w.treeOp(p, func() {
					d := w.districtAddr(district)
					v := p.Load(d)
					p.Tick(120)
					p.Store(d, v+amount)
				})
			case opPayment:
				p.Tick(think)
				w.treeOp(p, func() {
					bal, ok := w.customers.Search(p, customer)
					if !ok {
						panic("jbb: missing customer")
					}
					// Credit and discount computation against the record.
					p.Tick(180)
					w.customers.Update(p, customer, bal-amount)
				})
				// District year-to-date totals: hot line, last, nested.
				w.treeOp(p, func() {
					d := w.districtAddr(district)
					v := p.Load(d)
					p.Tick(120)
					p.Store(d, v+amount)
				})
			case opStatus:
				p.Tick(think / 2)
				w.customers.Search(p, customer)
				w.orders.Search(p, uint64(district)<<32|uint64(op)+1)
			}
		})
	}
}

func (w *JBB) Verify(m *core.Machine) error {
	raw := m.Mem()
	var wantDistrict = make([]uint64, w.Districts)
	wantBal := make(map[uint64]int64)
	wantStock := make(map[uint64]uint64)
	newOrders := 0
	for op := 0; op < w.TotalOps; op++ {
		kind, customer, district, amount, items, _ := w.opParams(op)
		switch kind {
		case opNewOrder:
			newOrders++
			wantDistrict[district] += amount
			for _, it := range items {
				wantStock[it]++
			}
		case opPayment:
			wantDistrict[district] += amount
			wantBal[customer] += int64(amount)
		}
	}
	for d := 0; d < w.Districts; d++ {
		if got := raw.Load(w.districtAddr(d)); got != wantDistrict[d] {
			return fmt.Errorf("district %d total = %d, want %d", d, got, wantDistrict[d])
		}
	}
	// Order IDs must be unique and the tree must hold exactly the
	// committed new orders.
	seen := make(map[uint64]bool)
	count := 0
	w.orders.Walk(func(k, v uint64) {
		if seen[k] {
			panic(fmt.Sprintf("jbb: duplicate order id %d", k))
		}
		seen[k] = true
		count++
	})
	if count != newOrders+w.PreloadOrders {
		return fmt.Errorf("orders tree has %d entries, want %d", count, newOrders+w.PreloadOrders)
	}
	ctr := raw.Load(w.counter)
	base := uint64(w.PreloadOrders)
	if w.Mode == JBBOpen {
		// Aborted attempts may consume IDs; the counter only bounds them.
		if ctr < base+uint64(newOrders)+1 {
			return fmt.Errorf("counter = %d, below committed orders %d", ctr, newOrders)
		}
	} else if ctr != base+uint64(newOrders)+1 {
		return fmt.Errorf("counter = %d, want %d", ctr, base+uint64(newOrders)+1)
	}
	// Spot-check stock and balances through the raw walker.
	gotStock := make(map[uint64]uint64)
	w.stock.Walk(func(k, v uint64) { gotStock[k] = v })
	for it, n := range wantStock {
		if got := gotStock[it]; got != 1_000_000-n {
			return fmt.Errorf("stock %d = %d, want %d", it, got, 1_000_000-n)
		}
	}
	gotBal := make(map[uint64]uint64)
	w.customers.Walk(func(k, v uint64) { gotBal[k] = v })
	for c, paid := range wantBal {
		want := uint64(int64(1000) - paid)
		if got := gotBal[c]; got != want {
			return fmt.Errorf("customer %d balance = %d, want %d", c, got, want)
		}
	}
	return nil
}
