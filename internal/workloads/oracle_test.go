package workloads

import (
	"fmt"
	"testing"

	"tmisa/internal/core"
)

// oracleRun is one cell of the oracle matrix: a workload plus the CPU
// count it runs at.
type oracleRun struct {
	w    Workload
	cpus int
}

// oracleSuite returns the workload set for the oracle matrix. The lazy
// engine runs the full default suite at the paper's 8 CPUs. Under
// eager/requester-wins the full-size SPECjbb2000 warehouse thrashes
// without software contention management (EXPERIMENTS.md, ablation A2),
// so the eager leg runs a reduced warehouse at 2 CPUs that still
// exercises every code path — the B-tree, the order-ID hotspot, and
// both the closed and open variants.
func oracleSuite(engine core.EngineKind) []oracleRun {
	if engine == core.Lazy {
		var rs []oracleRun
		for _, w := range suite() {
			rs = append(rs, oracleRun{w, 8})
		}
		return rs
	}
	rs := []oracleRun{
		{DefaultBarnes(), 4},
		{DefaultFMM(), 4},
		{DefaultMoldyn(), 4},
		{DefaultMP3D(), 4},
		{DefaultSwim(), 4},
		{DefaultTomcatv(), 4},
		{DefaultWater(), 4},
	}
	for _, mode := range []JBBMode{JBBClosed, JBBOpen} {
		jb := DefaultJBB(mode)
		jb.TotalOps, jb.Customers, jb.StockSKUs = 16, 16, 8
		rs = append(rs, oracleRun{jb, 2})
	}
	return rs
}

// runOracle executes w with the oracle attached and asserts the run was
// actually observed (Execute itself panics on an oracle verdict).
func runOracle(t *testing.T, w Workload, cfg core.Config, cpus int) {
	t.Helper()
	cfg.Oracle = true
	var m *core.Machine
	ExecuteTraced(w, cfg, cpus, func(mach *core.Machine) { m = mach })
	if m.OracleEvents() == 0 {
		t.Fatal("oracle saw no events: the stream is not wired up")
	}
}

// TestOracleMatrix: every workload passes the serializability and
// strong-atomicity oracle under both engines, flat and nested. Execute
// panics on an oracle verdict, so completing a run is the assertion.
func TestOracleMatrix(t *testing.T) {
	for _, engine := range []core.EngineKind{core.Lazy, core.Eager} {
		for _, flatten := range []bool{false, true} {
			for _, r := range oracleSuite(engine) {
				t.Run(fmt.Sprintf("%s/flatten=%v/%s", engine, flatten, r.w.Name()), func(t *testing.T) {
					cfg := core.DefaultConfig()
					cfg.Engine = engine
					cfg.Flatten = flatten
					runOracle(t, r.w, cfg, r.cpus)
				})
			}
		}
	}
}

// TestOracleMatrixWordTracking: word-granularity conflict detection is
// oracle-clean on both engines (subset, matching TestWorkloadsOnWordTracking).
func TestOracleMatrixWordTracking(t *testing.T) {
	for _, engine := range []core.EngineKind{core.Lazy, core.Eager} {
		for _, w := range []Workload{DefaultMP3D(), DefaultMoldyn()} {
			t.Run(fmt.Sprintf("%s/%s", engine, w.Name()), func(t *testing.T) {
				cfg := core.DefaultConfig()
				cfg.Engine = engine
				cfg.WordTracking = true
				cpus := 8
				if engine == core.Eager {
					cpus = 4
				}
				runOracle(t, w, cfg, cpus)
			})
		}
	}
}
