package workloads

import (
	"fmt"
	"math"

	"tmisa/internal/core"
	"tmisa/internal/mem"
)

// Swim is the synthetic equivalent of SPEC CPU2000 swim: a shallow-water
// stencil over a grid, speculatively parallelized by row blocks. The
// stencil itself reads the previous step's grid and writes a disjoint
// block of the next grid (no cross-CPU conflicts), but every block ends
// by folding its local convergence statistics into three global
// reduction variables — the classic reduction-at-the-end-of-a-large-
// transaction pattern the paper nests.
type Swim struct {
	// N is the grid edge (N x N cells).
	N int
	// Steps is the number of relaxation sweeps.
	Steps int
	// CellCost is the per-cell stencil instruction count.
	CellCost int

	gridA, gridB       mem.Addr
	redU, redV, redCnt mem.Addr
	bar                *barrier
	lineSize           int
	cpusSetup          int
}

// DefaultSwim returns the evaluation's default size.
func DefaultSwim() *Swim {
	return &Swim{N: 28, Steps: 3, CellCost: 10}
}

func (w *Swim) Name() string { return "swim" }

func (w *Swim) Setup(m *core.Machine, cpus int) {
	w.cpusSetup = cpus
	w.bar = newBarrier(m, cpus)
	w.lineSize = m.Config().Cache.LineSize
	w.gridA = m.AllocAligned(w.N*w.N*mem.WordSize, w.lineSize)
	w.gridB = m.AllocAligned(w.N*w.N*mem.WordSize, w.lineSize)
	w.redU = m.AllocLine()
	w.redV = m.AllocLine()
	w.redCnt = m.AllocLine()
	m.LabelRegion("Swim.gridA", w.gridA, w.N*w.N*mem.WordSize)
	m.LabelRegion("Swim.gridB", w.gridB, w.N*w.N*mem.WordSize)
	m.LabelRegion("Swim.redU", w.redU, w.lineSize)
	m.LabelRegion("Swim.redV", w.redV, w.lineSize)
	m.LabelRegion("Swim.redCnt", w.redCnt, w.lineSize)
	raw := m.Mem()
	for i := 0; i < w.N*w.N; i++ {
		raw.Store(w.gridA+mem.Addr(i*mem.WordSize), mem.F2B(float64(i%17)*0.25))
	}
}

func (w *Swim) cell(grid mem.Addr, r, c int) mem.Addr {
	return grid + mem.Addr((r*w.N+c)*mem.WordSize)
}

// stencilValue is the shared stencil kernel, used both by Run (through
// the simulator) and Verify (directly).
func stencilValue(center, up, down, left, right float64) float64 {
	return 0.2*(up+down+left+right) + 0.2*center + 0.01
}

func (w *Swim) Run(p *core.Proc, cpus int) {
	src, dst := w.gridA, w.gridB
	for step := 0; step < w.Steps; step++ {
		lo, hi := chunk(w.N-2, cpus, p.ID())
		lo, hi = lo+1, hi+1 // interior rows only
		//tmlint:allow txfootprint -- band-sized stencil transaction; BENCH_hybrid measures its capacity fallback on purpose
		p.Atomic(func(outer *core.Tx) {
			localU, localV, cells := 0.0, 0.0, uint64(0)
			for r := lo; r < hi; r++ {
				for c := 1; c < w.N-1; c++ {
					center := mem.B2F(p.Load(w.cell(src, r, c)))
					up := mem.B2F(p.Load(w.cell(src, r-1, c)))
					down := mem.B2F(p.Load(w.cell(src, r+1, c)))
					left := mem.B2F(p.Load(w.cell(src, r, c-1)))
					right := mem.B2F(p.Load(w.cell(src, r, c+1)))
					p.Tick(w.CellCost)
					nv := stencilValue(center, up, down, left, right)
					p.Store(w.cell(dst, r, c), mem.F2B(nv))
					localU += nv
					localV += math.Abs(nv - center)
					cells++
				}
			}
			// The global reduction: a small closed-nested transaction at
			// the end of the large block transaction.
			p.Atomic(func(inner *core.Tx) {
				p.StoreF(w.redU, p.LoadF(w.redU)+localU)
				p.StoreF(w.redV, p.LoadF(w.redV)+localV)
				p.Store(w.redCnt, p.Load(w.redCnt)+cells)
			})
		})
		w.bar.wait(p, step)
		src, dst = dst, src
	}
}

func (w *Swim) Verify(m *core.Machine) error {
	// Recompute the whole run directly against raw memory semantics.
	n := w.N
	a := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i%17) * 0.25
	}
	b := make([]float64, n*n)
	var wantU, wantV float64
	var wantCnt uint64
	for step := 0; step < w.Steps; step++ {
		for r := 1; r < n-1; r++ {
			for c := 1; c < n-1; c++ {
				nv := stencilValue(a[r*n+c], a[(r-1)*n+c], a[(r+1)*n+c], a[r*n+c-1], a[r*n+c+1])
				b[r*n+c] = nv
				wantU += nv
				wantV += math.Abs(nv - a[r*n+c])
				wantCnt++
			}
		}
		a, b = b, a
	}
	raw := m.Mem()
	if got := raw.Load(w.redCnt); got != wantCnt {
		return fmt.Errorf("reduction count = %d, want %d (lost reduction updates)", got, wantCnt)
	}
	gotU := mem.B2F(raw.Load(w.redU))
	gotV := mem.B2F(raw.Load(w.redV))
	if math.Abs(gotU-wantU) > 1e-6*math.Abs(wantU)+1e-9 {
		return fmt.Errorf("redU = %g, want %g", gotU, wantU)
	}
	if math.Abs(gotV-wantV) > 1e-6*math.Abs(wantV)+1e-9 {
		return fmt.Errorf("redV = %g, want %g", gotV, wantV)
	}
	// Spot-check the final grid (the grid holding the last step's output).
	final := w.gridA
	if w.Steps%2 == 1 {
		final = w.gridB
	}
	for _, idx := range []int{n + 1, 2*n + 3, (n-2)*n + (n - 2)} {
		got := mem.B2F(raw.Load(final + mem.Addr(idx*mem.WordSize)))
		if math.Abs(got-a[idx]) > 1e-9 {
			return fmt.Errorf("grid[%d] = %g, want %g", idx, got, a[idx])
		}
	}
	return nil
}
