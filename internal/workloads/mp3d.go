package workloads

import (
	"fmt"

	"tmisa/internal/core"
	"tmisa/internal/mem"
)

// MP3D is the synthetic equivalent of SPLASH mp3d: a particle simulation
// whose dominant transactional behaviour is particles colliding with
// shared space cells. Particles stream through space, so processors at
// similar sweep progress collide in the same few cells at the same time
// (a wavefront): conflicts land on the cell a processor is updating right
// now, almost never on cells already behind the wavefront. Each outer
// transaction processes a group of particles; under flattening one cell
// conflict discards the whole group's accumulated work, while closed
// nesting re-executes only the one collision update — which is why mp3d
// is the paper's largest Figure 5 win (4.93x).
type MP3D struct {
	// Particles is the particle count (partitioned across CPUs).
	Particles int
	// Cells is the shared collision-cell pool size (small = hot).
	Cells int
	// Steps is the number of simulation sweeps.
	Steps int
	// Group is how many particles one outer transaction processes.
	Group int
	// MoveCost and CollideCost are the per-particle instruction counts of
	// the private movement phase and the in-cell collision phase.
	MoveCost, CollideCost int
	// PhaseCycles is how long (in cycles) the collision wavefront dwells
	// in one cell: the gas front advances with global simulation time, so
	// every processor contends for the same cell while the front is there.
	PhaseCycles uint64

	particles mem.Addr // 4 words each: x, v, energy, seed
	cells     mem.Addr // one line each: [count, momentum, energy]
	lineSize  int
}

// DefaultMP3D returns the evaluation's default size.
func DefaultMP3D() *MP3D {
	return &MP3D{
		Particles:   192,
		Cells:       12,
		Steps:       6,
		Group:       8,
		MoveCost:    300,
		CollideCost: 200,
		PhaseCycles: 1000,
	}
}

func (w *MP3D) Name() string { return "mp3d" }

func (w *MP3D) Setup(m *core.Machine, cpus int) {
	w.lineSize = m.Config().Cache.LineSize
	w.particles = m.AllocAligned(w.Particles*4*mem.WordSize, w.lineSize)
	w.cells = m.AllocAligned(w.Cells*w.lineSize, w.lineSize)
	m.LabelRegion("MP3D.particles", w.particles, w.Particles*4*mem.WordSize)
	m.LabelRegion("MP3D.cells", w.cells, w.Cells*w.lineSize)
	raw := m.Mem()
	for i := 0; i < w.Particles; i++ {
		base := w.particles + mem.Addr(i*4*mem.WordSize)
		raw.Store(base+0, uint64(i)*7+1)  // x
		raw.Store(base+8, uint64(i)%5+1)  // v
		raw.Store(base+16, 0)             // energy
		raw.Store(base+24, uint64(i)+101) // collision seed
	}
}

func (w *MP3D) cellAddr(i int) mem.Addr { return w.cells + mem.Addr(i*w.lineSize) }

func (w *MP3D) Run(p *core.Proc, cpus int) {
	lo, hi := chunk(w.Particles, cpus, p.ID())
	for step := 0; step < w.Steps; step++ {
		for g := lo; g < hi; g += w.Group {
			gEnd := g + w.Group
			if gEnd > hi {
				gEnd = hi
			}
			p.Atomic(func(outer *core.Tx) {
				var vsum uint64
				// Private movement phase for the whole group: the bulk of
				// the transaction's work touches only this CPU's
				// particles.
				for i := g; i < gEnd; i++ {
					base := w.particles + mem.Addr(i*4*mem.WordSize)
					x := p.Load(base)
					v := p.Load(base + 8)
					p.Tick(w.MoveCost)
					p.Store(base, x+v)
					p.Store(base+16, p.Load(base+16)+v*v)
					vsum += v
				}
				// The group's collisions fold into one cell update at the
				// end. The wavefront cell advances with global simulation
				// time, so every processor contends for the same cell
				// while the front dwells there: under flattening a
				// conflict here discards the whole group's movement work.
				idx := int((p.Now() / w.PhaseCycles) % uint64(w.Cells))
				cell := w.cellAddr(idx)
				n := uint64(gEnd - g)
				p.Atomic(func(inner *core.Tx) {
					cnt := p.Load(cell)
					mom := p.Load(cell + 8)
					p.Tick(w.CollideCost)
					p.Store(cell, cnt+n)
					p.Store(cell+8, mom+vsum)
				})
			})
		}
	}
}

func (w *MP3D) Verify(m *core.Machine) error {
	raw := m.Mem()
	var count uint64
	for i := 0; i < w.Cells; i++ {
		count += raw.Load(w.cellAddr(i))
	}
	want := uint64(w.Particles * w.Steps)
	if count != want {
		return fmt.Errorf("collision count = %d, want %d (lost cell updates)", count, want)
	}
	for i := 0; i < w.Particles; i++ {
		base := w.particles + mem.Addr(i*4*mem.WordSize)
		// Each particle moved Steps times at constant velocity.
		wantX := uint64(i)*7 + 1 + uint64(w.Steps)*(uint64(i)%5+1)
		if got := raw.Load(base); got != wantX {
			return fmt.Errorf("particle %d position = %d, want %d", i, got, wantX)
		}
	}
	return nil
}
