package workloads

import (
	"fmt"

	"tmisa/internal/core"
	"tmisa/internal/mem"
)

// FMM is the synthetic equivalent of SPLASH fmm (fast multipole method):
// each chunk of target cells reads stable neighbor multipoles, performs
// private expansion arithmetic, and folds its result into one of four
// shared quadrant moment accumulators in a closed-nested transaction. Its
// contention sits between barnes (8-way split) and moldyn (global lines).
type FMM struct {
	Cells     int
	Steps     int
	Chunk     int
	ExpCost   int
	Quadrants int

	src, dst  mem.Addr
	quadrants mem.Addr
	bar       *barrier
	lineSize  int
}

// DefaultFMM returns the evaluation's default size.
func DefaultFMM() *FMM {
	return &FMM{Cells: 128, Steps: 3, Chunk: 4, ExpCost: 100, Quadrants: 4}
}

func (w *FMM) Name() string { return "fmm" }

func (w *FMM) Setup(m *core.Machine, cpus int) {
	w.lineSize = m.Config().Cache.LineSize
	w.bar = newBarrier(m, cpus)
	w.src = m.AllocAligned(w.Cells*mem.WordSize, w.lineSize)
	w.dst = m.AllocAligned(w.Cells*mem.WordSize, w.lineSize)
	w.quadrants = m.AllocAligned(w.Quadrants*w.lineSize, w.lineSize)
	m.LabelRegion("FMM.src", w.src, w.Cells*mem.WordSize)
	m.LabelRegion("FMM.dst", w.dst, w.Cells*mem.WordSize)
	m.LabelRegion("FMM.quadrants", w.quadrants, w.Quadrants*w.lineSize)
	raw := m.Mem()
	for i := 0; i < w.Cells; i++ {
		raw.Store(w.src+mem.Addr(i*mem.WordSize), uint64(i)*13+5)
	}
}

// expansion is the deterministic multipole translation.
func expansion(center, left, right, step uint64) uint64 {
	return (center*31 + left*17 + right*7 + step) % 100003
}

func (w *FMM) Run(p *core.Proc, cpus int) {
	src, dst := w.src, w.dst
	for step := 0; step < w.Steps; step++ {
		lo, hi := chunk(w.Cells, cpus, p.ID())
		for c := lo; c < hi; c += w.Chunk {
			cEnd := c + w.Chunk
			if cEnd > hi {
				cEnd = hi
			}
			p.Atomic(func(outer *core.Tx) {
				var local uint64
				quad := 0
				for i := c; i < cEnd; i++ {
					l, r := (i+w.Cells-1)%w.Cells, (i+1)%w.Cells
					cv := p.Load(src + mem.Addr(i*mem.WordSize))
					lv := p.Load(src + mem.Addr(l*mem.WordSize))
					rv := p.Load(src + mem.Addr(r*mem.WordSize))
					p.Tick(w.ExpCost)
					nv := expansion(cv, lv, rv, uint64(step))
					p.Store(dst+mem.Addr(i*mem.WordSize), nv)
					local += nv
					quad = i * w.Quadrants / w.Cells
				}
				p.Atomic(func(inner *core.Tx) {
					cell := w.quadrants + mem.Addr(quad*w.lineSize)
					p.Store(cell, p.Load(cell)+local)
				})
			})
		}
		w.bar.wait(p, step)
		src, dst = dst, src
	}
}

func (w *FMM) Verify(m *core.Machine) error {
	// Recompute the whole run.
	src := make([]uint64, w.Cells)
	dst := make([]uint64, w.Cells)
	for i := range src {
		src[i] = uint64(i)*13 + 5
	}
	var want uint64
	for step := 0; step < w.Steps; step++ {
		for i := 0; i < w.Cells; i++ {
			l, r := (i+w.Cells-1)%w.Cells, (i+1)%w.Cells
			dst[i] = expansion(src[i], src[l], src[r], uint64(step))
			want += dst[i]
		}
		src, dst = dst, src
	}
	raw := m.Mem()
	var total uint64
	for q := 0; q < w.Quadrants; q++ {
		total += raw.Load(w.quadrants + mem.Addr(q*w.lineSize))
	}
	if total != want {
		return fmt.Errorf("quadrant total = %d, want %d (lost updates)", total, want)
	}
	// The final cell array must match the recomputation.
	final := w.src
	if w.Steps%2 == 1 {
		final = w.dst
	}
	for i := 0; i < w.Cells; i++ {
		if got := raw.Load(final + mem.Addr(i*mem.WordSize)); got != src[i] {
			return fmt.Errorf("cell %d = %d, want %d", i, got, src[i])
		}
	}
	return nil
}
