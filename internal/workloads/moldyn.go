package workloads

import (
	"fmt"

	"tmisa/internal/core"
	"tmisa/internal/mem"
)

// Moldyn is the synthetic equivalent of Java Grande moldyn: molecular
// dynamics with heavy private pair-force computation per particle chunk,
// ending with a closed-nested update of the global virial and kinetic
// energy accumulators plus one bin of a small shared velocity histogram.
// Two-and-a-half contended lines per chunk give it a conflict rate
// between water's and mp3d's.
type Moldyn struct {
	Particles int
	Steps     int
	ChunkSize int
	PairCost  int
	Bins      int

	parts        mem.Addr // 4 words: vx, vy, local-energy, pad
	virial, ekin mem.Addr
	hist         mem.Addr // Bins lines
	lineSize     int
}

// DefaultMoldyn returns the evaluation's default size.
func DefaultMoldyn() *Moldyn {
	return &Moldyn{Particles: 144, Steps: 4, ChunkSize: 9, PairCost: 140, Bins: 4}
}

func (w *Moldyn) Name() string { return "moldyn" }

func (w *Moldyn) Setup(m *core.Machine, cpus int) {
	w.lineSize = m.Config().Cache.LineSize
	w.parts = m.AllocAligned(w.Particles*4*mem.WordSize, w.lineSize)
	w.virial = m.AllocLine()
	w.ekin = m.AllocLine()
	w.hist = m.AllocAligned(w.Bins*w.lineSize, w.lineSize)
	m.LabelRegion("Moldyn.parts", w.parts, w.Particles*4*mem.WordSize)
	m.LabelRegion("Moldyn.virial", w.virial, w.lineSize)
	m.LabelRegion("Moldyn.ekin", w.ekin, w.lineSize)
	m.LabelRegion("Moldyn.hist", w.hist, w.Bins*w.lineSize)
	raw := m.Mem()
	for i := 0; i < w.Particles; i++ {
		base := w.parts + mem.Addr(i*4*mem.WordSize)
		raw.Store(base, uint64(i)%9+1)
		raw.Store(base+8, uint64(i)%4+1)
	}
}

// pairForces is the deterministic per-particle step contribution.
func pairForces(vx, vy, step uint64) (vir, ek uint64) {
	h := vx*11400714819323198485 + vy*14029467366897019727 + step
	return h % 512, (h >> 13) % 512
}

func (w *Moldyn) Run(p *core.Proc, cpus int) {
	lo, hi := chunk(w.Particles, cpus, p.ID())
	for step := 0; step < w.Steps; step++ {
		for c := lo; c < hi; c += w.ChunkSize {
			cEnd := c + w.ChunkSize
			if cEnd > hi {
				cEnd = hi
			}
			p.Atomic(func(outer *core.Tx) {
				var lvir, lek, binHits uint64
				bin := 0
				for i := c; i < cEnd; i++ {
					base := w.parts + mem.Addr(i*4*mem.WordSize)
					vx := p.Load(base)
					vy := p.Load(base + 8)
					p.Tick(w.PairCost)
					vir, ek := pairForces(vx, vy, uint64(step))
					p.Store(base+16, p.Load(base+16)+ek)
					lvir += vir
					lek += ek
					bin = int(vx+vy) % w.Bins
					binHits++
				}
				p.Atomic(func(inner *core.Tx) {
					p.Store(w.virial, p.Load(w.virial)+lvir)
					p.Store(w.ekin, p.Load(w.ekin)+lek)
					b := w.hist + mem.Addr(bin*w.lineSize)
					p.Store(b, p.Load(b)+binHits)
				})
			})
		}
	}
}

func (w *Moldyn) Verify(m *core.Machine) error {
	var wantVir, wantEk uint64
	for step := 0; step < w.Steps; step++ {
		for i := 0; i < w.Particles; i++ {
			vir, ek := pairForces(uint64(i)%9+1, uint64(i)%4+1, uint64(step))
			wantVir += vir
			wantEk += ek
		}
	}
	raw := m.Mem()
	if got := raw.Load(w.virial); got != wantVir {
		return fmt.Errorf("virial = %d, want %d", got, wantVir)
	}
	if got := raw.Load(w.ekin); got != wantEk {
		return fmt.Errorf("ekin = %d, want %d", got, wantEk)
	}
	var histTotal uint64
	for b := 0; b < w.Bins; b++ {
		histTotal += raw.Load(w.hist + mem.Addr(b*w.lineSize))
	}
	if want := uint64(w.Particles * w.Steps); histTotal != want {
		return fmt.Errorf("histogram total = %d, want %d (lost bin updates)", histTotal, want)
	}
	return nil
}
