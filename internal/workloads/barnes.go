package workloads

import (
	"fmt"

	"tmisa/internal/core"
	"tmisa/internal/mem"
)

// Barnes is the synthetic equivalent of SPLASH barnes (Barnes-Hut N-body):
// the force phase walks a shared tree read-only (a large read-set that is
// never written during the phase, hence conflict-free), updates private
// body state, and ends each body chunk by accumulating into one of a few
// shared subtree mass-moment cells — bookkeeping updates that are the
// only source of conflicts, split across regions, so Figure 5's barnes
// bar is one of the smallest.
type Barnes struct {
	Bodies   int
	Steps    int
	Chunk    int
	WalkCost int
	Regions  int
	TreeSize int

	bodies   mem.Addr // 4 words: x, m, acc, pad
	tree     mem.Addr // TreeSize read-only node words
	moments  mem.Addr // Regions lines
	lineSize int
}

// DefaultBarnes returns the evaluation's default size.
func DefaultBarnes() *Barnes {
	return &Barnes{Bodies: 192, Steps: 4, Chunk: 4, WalkCost: 90, Regions: 4, TreeSize: 64}
}

func (w *Barnes) Name() string { return "barnes" }

func (w *Barnes) Setup(m *core.Machine, cpus int) {
	w.lineSize = m.Config().Cache.LineSize
	w.bodies = m.AllocAligned(w.Bodies*4*mem.WordSize, w.lineSize)
	w.tree = m.AllocAligned(w.TreeSize*mem.WordSize, w.lineSize)
	w.moments = m.AllocAligned(w.Regions*w.lineSize, w.lineSize)
	m.LabelRegion("Barnes.bodies", w.bodies, w.Bodies*4*mem.WordSize)
	m.LabelRegion("Barnes.tree", w.tree, w.TreeSize*mem.WordSize)
	m.LabelRegion("Barnes.moments", w.moments, w.Regions*w.lineSize)
	raw := m.Mem()
	for i := 0; i < w.Bodies; i++ {
		base := w.bodies + mem.Addr(i*4*mem.WordSize)
		raw.Store(base, uint64(i)*5+3)   // x
		raw.Store(base+8, uint64(i)%6+1) // m
	}
	for i := 0; i < w.TreeSize; i++ {
		raw.Store(w.tree+mem.Addr(i*mem.WordSize), uint64(i)*2+1)
	}
}

// bodyForce combines a body with the tree nodes it visits.
func bodyForce(x, m uint64, nodes []uint64, step uint64) uint64 {
	acc := step
	for _, n := range nodes {
		acc += (x*n + m) % 97
	}
	return acc
}

func (w *Barnes) Run(p *core.Proc, cpus int) {
	lo, hi := chunk(w.Bodies, cpus, p.ID())
	for step := 0; step < w.Steps; step++ {
		for c := lo; c < hi; c += w.Chunk {
			cEnd := c + w.Chunk
			if cEnd > hi {
				cEnd = hi
			}
			p.Atomic(func(outer *core.Tx) {
				var localMass uint64
				region := 0
				for i := c; i < cEnd; i++ {
					base := w.bodies + mem.Addr(i*4*mem.WordSize)
					x := p.Load(base)
					mass := p.Load(base + 8)
					// Read-only tree walk: root plus a body-dependent path.
					var nodes []uint64
					idx := 0
					for d := 0; d < 5; d++ {
						nodes = append(nodes, p.Load(w.tree+mem.Addr(idx*mem.WordSize)))
						idx = (idx*2 + int(x%2) + 1) % w.TreeSize
					}
					p.Tick(w.WalkCost)
					acc := bodyForce(x, mass, nodes, uint64(step))
					p.Store(base+16, p.Load(base+16)+acc)
					localMass += mass
					region = (i / w.Chunk) % w.Regions
				}
				// Shared subtree moment update: the only conflicting write.
				p.Atomic(func(inner *core.Tx) {
					cell := w.moments + mem.Addr(region*w.lineSize)
					p.Store(cell, p.Load(cell)+localMass)
				})
			})
		}
	}
}

func (w *Barnes) Verify(m *core.Machine) error {
	raw := m.Mem()
	var total uint64
	for r := 0; r < w.Regions; r++ {
		total += raw.Load(w.moments + mem.Addr(r*w.lineSize))
	}
	var want uint64
	for i := 0; i < w.Bodies; i++ {
		want += (uint64(i)%6 + 1) * uint64(w.Steps)
	}
	if total != want {
		return fmt.Errorf("moment total = %d, want %d (lost updates)", total, want)
	}
	return nil
}
