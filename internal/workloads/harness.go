// Package workloads implements the evaluation programs of Section 7: the
// speculatively parallelized scientific kernels (barnes, fmm, moldyn,
// mp3d, swim, tomcatv, water), the SPECjbb2000-style warehouse with its
// flat/closed/open variants, the transactional-I/O microbenchmark, and
// the conditional-synchronization benchmark.
//
// Each scientific kernel is a synthetic equivalent reproducing the
// original application's transactional structure — large outer
// transactions created by speculative loop parallelization, with small,
// conflict-prone inner updates (reduction variables, particle-collision
// cells, tree nodes) wrapped in closed-nested transactions — because that
// structure is what Figure 5 measures: how much independent rollback of
// the inner transactions saves over flattening. The same program runs as
// the "flat" baseline simply by configuring the machine with
// Config.Flatten (conventional HTM subsumption).
package workloads

import (
	"fmt"

	"tmisa/internal/core"
	"tmisa/internal/mem"
	"tmisa/internal/stats"
)

// Workload is one evaluation program.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Setup lays out the workload's state in simulated memory (untimed);
	// cpus is the CPU count the run will use (for barriers and sizing).
	Setup(m *core.Machine, cpus int)
	// Run is the per-CPU program; cpus is the number of CPUs sharing the
	// work (iterations are partitioned by p.ID()).
	Run(p *core.Proc, cpus int)
	// Verify checks the final memory image against the workload's
	// invariants (untimed); it returns an error on corruption, which
	// would indicate an atomicity or isolation bug in the HTM.
	Verify(m *core.Machine) error
}

// Execute runs w on a machine built from cfg with the given CPU count and
// returns the report. It panics if Verify fails: a workload result is
// only meaningful on a correct execution.
func Execute(w Workload, cfg core.Config, cpus int) *stats.Report {
	return ExecuteTraced(w, cfg, cpus, nil)
}

// ExecuteTraced is Execute with a machine-customization hook (for
// example attaching a tracer) run between construction and Setup.
func ExecuteTraced(w Workload, cfg core.Config, cpus int, customize func(*core.Machine)) *stats.Report {
	cfg.CPUs = cpus
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 3_000_000_000
	}
	m := core.NewMachine(cfg)
	if customize != nil {
		customize(m)
	}
	w.Setup(m, cpus)
	bodies := make([]func(*core.Proc), cpus)
	for i := 0; i < cpus; i++ {
		bodies[i] = func(p *core.Proc) { w.Run(p, cpus) }
	}
	rep := m.Run(bodies...)
	if err := w.Verify(m); err != nil {
		panic(fmt.Sprintf("workloads: %s failed verification (%s, flatten=%v): %v",
			w.Name(), cfg.Engine, cfg.Flatten, err))
	}
	if err := m.CheckOracle(); err != nil {
		panic(fmt.Sprintf("workloads: %s failed the serializability oracle (%s, flatten=%v): %v",
			w.Name(), cfg.Engine, cfg.Flatten, err))
	}
	return rep
}

// ExecuteSequential runs w on one CPU with all transactional mechanisms
// disabled: the sequential baseline the paper's per-bar annotations are
// computed against.
func ExecuteSequential(w Workload, cfg core.Config) *stats.Report {
	return ExecuteSequentialTraced(w, cfg, nil)
}

// ExecuteSequentialTraced is ExecuteSequential with the customization
// hook of ExecuteTraced.
func ExecuteSequentialTraced(w Workload, cfg core.Config, customize func(*core.Machine)) *stats.Report {
	cfg.Sequential = true
	cfg.Flatten = false
	return ExecuteTraced(w, cfg, 1, customize)
}

// Figure5Row holds one bar of Figure 5.
type Figure5Row struct {
	Name string
	// SpeedupOverFlat is the bar height: nested cycles vs flattened
	// cycles at the same CPU count.
	SpeedupOverFlat float64
	// SpeedupOverSeq is the number printed above the bar: nested version
	// vs sequential execution on one CPU.
	SpeedupOverSeq float64
	// FlatOverSeq is the flattened version's speedup over sequential
	// (reported for SPECjbb2000: 1.92 in the paper).
	FlatOverSeq float64

	Seq, Flat, Nested *stats.Report
}

// MeasureFigure5 produces one Figure 5 bar: sequential, flattened, and
// fully nested runs of w.
func MeasureFigure5(w Workload, cfg core.Config, cpus int) Figure5Row {
	return MeasureFigure5Traced(w, cfg, cpus, nil)
}

// MeasureFigure5Traced is MeasureFigure5 with a per-stage machine
// customization hook; stage is "seq", "flat", or "nested". A profiler
// attaches here to see all three runs of the bar as separate traces.
func MeasureFigure5Traced(w Workload, cfg core.Config, cpus int, customize func(stage string, m *core.Machine)) Figure5Row {
	hook := func(stage string) func(*core.Machine) {
		if customize == nil {
			return nil
		}
		return func(m *core.Machine) { customize(stage, m) }
	}

	seq := ExecuteSequentialTraced(w, cfg, hook("seq"))

	flatCfg := cfg
	flatCfg.Flatten = true
	flat := ExecuteTraced(w, flatCfg, cpus, hook("flat"))

	nestCfg := cfg
	nestCfg.Flatten = false
	nested := ExecuteTraced(w, nestCfg, cpus, hook("nested"))

	return Figure5Row{
		Name:            w.Name(),
		SpeedupOverFlat: stats.Speedup(flat, nested),
		SpeedupOverSeq:  stats.Speedup(seq, nested),
		FlatOverSeq:     stats.Speedup(seq, flat),
		Seq:             seq,
		Flat:            flat,
		Nested:          nested,
	}
}

// rng is a deterministic xorshift64* generator; every CPU derives its own
// stream from its ID so runs are reproducible.
type rng uint64

func newRNG(seed uint64) rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return rng(seed)
}

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 0x2545f4914f6cdd1d
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// barrier is a simple sense-free phase barrier over a shared counter:
// arrival is a small transaction; waiting polls non-transactionally (no
// read-set growth, so no conflicts — the paper's efficient-barrier use of
// conditional synchronization is benchmarked separately in condsync).
type barrier struct {
	cell mem.Addr
	n    int
}

func newBarrier(m *core.Machine, n int) *barrier {
	b := &barrier{cell: m.AllocLine(), n: n}
	m.LabelRegion("barrier.cell", b.cell, 8)
	return b
}

// wait blocks CPU p until all n CPUs have arrived at the given phase
// (phases must be used in increasing order: 0, 1, 2, ...).
func (b *barrier) wait(p *core.Proc, phase int) {
	p.Atomic(func(tx *core.Tx) {
		p.Store(b.cell, p.Load(b.cell)+1)
	})
	target := uint64(b.n * (phase + 1))
	for p.Load(b.cell) < target {
		p.Tick(20)
	}
}

// chunk partitions n items over cpus and returns CPU id's [lo, hi).
func chunk(n, cpus, id int) (lo, hi int) {
	per := (n + cpus - 1) / cpus
	lo = id * per
	hi = lo + per
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}
