package workloads

import (
	"fmt"

	"tmisa/internal/core"
	"tmisa/internal/mem"
	"tmisa/internal/stats"
	"tmisa/internal/txrt"
)

// IOBench is the Section 7.2 transactional-I/O microbenchmark: "each
// thread repeatedly performs a small computation within a transaction and
// outputs a message into a log". The transactional library buffers the
// output in a private buffer and registers a commit handler that performs
// the real write between xvalidate and xcommit; the conventional baseline
// serializes the machine at the I/O point (SerializeToCommit), modelling
// HTMs that revert to sequential execution on I/O.
type IOBench struct {
	// TotalOps is the fixed total number of compute+log operations.
	TotalOps int
	// ComputeCost is the instruction count of one computation.
	ComputeCost int
	// Message is the log record written per operation.
	Message []byte
	// Serialize selects the conventional serialize-on-I/O baseline.
	Serialize bool

	sys  *txrt.IOSys
	tio  *txrt.TxIO
	log  int
	data mem0
}

// mem0 keeps a private scratch line per CPU so the transaction has real
// transactional state alongside its I/O.
type mem0 struct {
	base   uint64
	stride int
}

// DefaultIOBench returns the evaluation's default size.
func DefaultIOBench(serialize bool) *IOBench {
	return &IOBench{
		TotalOps:    256,
		ComputeCost: 2500,
		Message:     []byte("transactional log record\n"),
		Serialize:   serialize,
	}
}

func (w *IOBench) Name() string {
	if w.Serialize {
		return "io-serialized"
	}
	return "io-transactional"
}

func (w *IOBench) Setup(m *core.Machine, cpus int) {
	w.sys = txrt.NewIOSys()
	w.tio = txrt.NewTxIO(w.sys)
	w.log = w.sys.Open("log")
	base := m.AllocAligned(cpus*m.Config().Cache.LineSize, m.Config().Cache.LineSize)
	w.data = mem0{base: uint64(base), stride: m.Config().Cache.LineSize}
}

func (w *IOBench) Run(p *core.Proc, cpus int) {
	lo, hi := chunk(w.TotalOps, cpus, p.ID())
	scratch := mem.Addr(w.data.base + uint64(p.ID()*w.data.stride))
	for op := lo; op < hi; op++ {
		p.Atomic(func(tx *core.Tx) {
			v := p.Load(scratch)
			p.Tick(w.ComputeCost)
			p.Store(scratch, v+1)
			if w.Serialize {
				w.tio.SerialWrite(p, tx, w.log, w.Message)
			} else {
				w.tio.Write(p, tx, w.log, w.Message)
			}
			// Post-I/O work inside the transaction: this is what the
			// serializing baseline executes while excluding every other
			// commit in the machine.
			p.Tick(w.ComputeCost / 4)
		})
	}
}

func (w *IOBench) Verify(m *core.Machine) error {
	want := w.TotalOps * len(w.Message)
	if got := w.sys.Size(w.log); got != want {
		return fmt.Errorf("log has %d bytes, want %d (lost or duplicated records)", got, want)
	}
	return nil
}

// Sys exposes the I/O subsystem for inspection in tests.
func (w *IOBench) Sys() *txrt.IOSys { return w.sys }

// MeasureIOScaling produces the Figure 6 series: speedup over one CPU for
// the transactional and serializing schemes across CPU counts.
func MeasureIOScaling(cpuCounts []int, cfg core.Config) (tx, serial *stats.Series) {
	tx = &stats.Series{Name: "transactional I/O (commit handlers)"}
	serial = &stats.Series{Name: "serialize-on-I/O baseline"}
	var txBase, serBase uint64
	for _, n := range cpuCounts {
		t := Execute(DefaultIOBench(false), cfg, n)
		s := Execute(DefaultIOBench(true), cfg, n)
		if txBase == 0 {
			txBase, serBase = t.TotalCycles, s.TotalCycles
		}
		tx.Add(fmt.Sprintf("%d", n), float64(txBase)/float64(t.TotalCycles))
		serial.Add(fmt.Sprintf("%d", n), float64(serBase)/float64(s.TotalCycles))
	}
	return tx, serial
}
