package workloads

// SuiteEntry pairs a canonical workload name with a constructor that
// builds a fresh instance at the evaluation's default size. Every
// consumer constructs its own instance, so concurrent runs share no
// workload state.
type SuiteEntry struct {
	Name string
	New  func() Workload
}

// Suite returns the paper's Figure 5 workload matrix in presentation
// order. The runner's experiment grid and the tmlint/tmprof differential
// checker both iterate this list, so the set of workloads the static
// conflict map is validated against is exactly the set the performance
// experiments run.
func Suite() []SuiteEntry {
	return []SuiteEntry{
		{"barnes", func() Workload { return DefaultBarnes() }},
		{"fmm", func() Workload { return DefaultFMM() }},
		{"moldyn", func() Workload { return DefaultMoldyn() }},
		{"mp3d", func() Workload { return DefaultMP3D() }},
		{"swim", func() Workload { return DefaultSwim() }},
		{"tomcatv", func() Workload { return DefaultTomcatv() }},
		{"water", func() Workload { return DefaultWater() }},
		{"SPECjbb2000-closed", func() Workload { return DefaultJBB(JBBClosed) }},
		{"SPECjbb2000-open", func() Workload { return DefaultJBB(JBBOpen) }},
	}
}
