// Bank: closed-nested transactions through a transparent library.
//
// A bank stores accounts in a B-tree library. Each transfer is one outer
// transaction that calls the library's debit and credit operations; the
// library wraps its tree accesses in closed-nested transactions
// (Section 3's "composable software" motivation): a conflict inside the
// tree re-executes only the tree operation, not the whole transfer, and
// the caller needs no knowledge of the library's internals.
//
// The program runs the same workload twice — with full nesting and with
// flattening (conventional HTM) — and reports the difference, plus the
// conservation-of-money invariant.
//
// Run with: go run ./examples/bank
package main

import (
	"fmt"

	"tmisa/internal/btree"
	"tmisa/internal/core"
)

const (
	accounts       = 64
	hotAccounts    = 4 // a few busy accounts concentrate the conflicts
	initialBalance = 1_000
	transfersPer   = 30
	cpus           = 8
)

// bank is the "library": accounts in a B-tree, operations closed-nested.
type bank struct {
	tree *btree.Tree
}

func (b *bank) adjust(p *core.Proc, account uint64, delta int64) {
	// The library's own atomic region: closed-nested under the caller's
	// transaction, independent rollback on tree conflicts.
	//tmlint:allow txfootprint -- B-tree descent bound is a conservative static estimate; demo trees are shallow
	p.Atomic(func(tx *core.Tx) {
		bal, ok := b.tree.Search(p, account)
		if !ok {
			panic("bank: unknown account")
		}
		p.Tick(25) // interest/fee computation against the record
		b.tree.Update(p, account, uint64(int64(bal)+delta))
	})
}

func (b *bank) transfer(p *core.Proc, from, to uint64, amount int64) {
	p.Atomic(func(tx *core.Tx) {
		p.Tick(700) // validation, fraud checks, logging prep
		b.adjust(p, from, -amount)
		b.adjust(p, to, +amount)
	})
}

func run(flatten bool) uint64 {
	cfg := core.DefaultConfig()
	cfg.CPUs = cpus
	cfg.Flatten = flatten
	m := core.NewMachine(cfg)

	b := &bank{tree: btree.New(m)}
	loader := m.SetupProc()
	for i := uint64(1); i <= accounts; i++ {
		b.tree.Insert(loader, i, initialBalance)
	}

	worker := func(p *core.Proc) {
		seed := uint64(p.ID()*2654435761 + 12345)
		for i := 0; i < transfersPer; i++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			from := seed>>33%accounts + 1
			// Most transfers credit one of the busy merchant accounts.
			to := seed>>17%hotAccounts*(accounts/hotAccounts) + 1
			if to == from {
				to = to%accounts + 1
			}
			amount := int64(seed % 97)
			b.transfer(p, from, to, amount)
		}
	}
	bodies := make([]func(*core.Proc), cpus)
	for i := range bodies {
		bodies[i] = worker
	}
	rep := m.Run(bodies...)

	// Conservation: the total across all accounts must be unchanged.
	var total uint64
	b.tree.Walk(func(k, v uint64) { total += v })
	if total != accounts*initialBalance {
		panic(fmt.Sprintf("money not conserved: %d != %d", total, accounts*initialBalance))
	}
	return rep.TotalCycles
}

func main() {
	nested := run(false)
	flat := run(true)
	fmt.Printf("flattened (conventional HTM): %8d cycles\n", flat)
	fmt.Printf("closed nesting:               %8d cycles\n", nested)
	fmt.Printf("nesting speedup:              %8.2fx\n", float64(flat)/float64(nested))
	fmt.Println("invariant: total balance conserved in both runs")
}
