// Quickstart: the smallest complete program on the transactional CMP.
//
// Eight simulated CPUs increment a shared counter inside transactions.
// With plain loads and stores this workload would lose updates; with
// Atomic every read-modify-write commits atomically, violated
// transactions roll back and re-execute, and the final count is exact.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"tmisa/internal/core"
)

func main() {
	cfg := core.DefaultConfig() // the paper's platform: 8 CPUs, lazy/TCC HTM
	m := core.NewMachine(cfg)

	// Shared state is laid out in simulated memory before the run. The
	// counter gets its own cache line (conflict detection is line-
	// granular, like the hardware).
	counter := m.AllocLine()

	const perCPU = 50
	worker := func(p *core.Proc) {
		for i := 0; i < perCPU; i++ {
			p.Atomic(func(tx *core.Tx) {
				v := p.Load(counter) // joins the transaction's read-set
				p.Tick(10)           // some computation (CPI = 1)
				p.Store(counter, v+1)
			})
		}
	}

	bodies := make([]func(*core.Proc), cfg.CPUs)
	for i := range bodies {
		bodies[i] = worker
	}
	rep := m.Run(bodies...)

	fmt.Printf("counter = %d (want %d)\n", m.Mem().Load(counter), cfg.CPUs*perCPU)
	fmt.Printf("simulated cycles: %d\n", rep.TotalCycles)
	fmt.Printf("commits: %d, violations: %d, rollbacks: %d, wasted cycles: %d\n",
		rep.Machine.TxCommits, rep.Machine.Violations, rep.Machine.Rollbacks, rep.Machine.WastedCycles)
}
