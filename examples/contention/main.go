// Contention: software contention management and control flow built from
// violation handlers (Section 3's "Contention and Error Management").
//
//   - TryAtomic (X10's tryatomic): attempt a transaction once; on a
//     violation take an alternate path instead of retrying.
//   - OrElse (transactional Haskell): compose a preferred and a fallback
//     transaction.
//   - AtomicWithBackoff: an exponential-backoff contention manager as a
//     violation handler, de-synchronizing transactions that keep
//     colliding.
//
// Run with: go run ./examples/contention
package main

import (
	"fmt"

	"tmisa/internal/core"
	"tmisa/internal/mem"
	"tmisa/internal/txrt"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.CPUs = 4
	m := core.NewMachine(cfg)

	hot := m.AllocLine() // heavily contended counter
	fallback := make([]mem.Addr, cfg.CPUs)
	for i := range fallback {
		fallback[i] = m.AllocLine() // per-CPU overflow cells
	}
	perCPU := make([]uint64, cfg.CPUs)

	worker := func(p *core.Proc) {
		for i := 0; i < 20; i++ {
			// Preferred path: add to the shared counter. Under contention
			// the attempt may be violated; then add to a private cell
			// instead (to be reconciled later) — a classic tryatomic use.
			ok := txrt.TryAtomic(p, func(tx *core.Tx) {
				v := p.Load(hot)
				p.Tick(50)
				p.Store(hot, v+1)
			})
			if !ok {
				cell := fallback[p.ID()]
				p.Atomic(func(tx *core.Tx) {
					p.Store(cell, p.Load(cell)+1)
				})
				perCPU[p.ID()]++
			}
		}
		// A guaranteed-progress section: same hot counter, managed by the
		// exponential-backoff violation handler.
		for i := 0; i < 10; i++ {
			txrt.AtomicWithBackoff(p, 25, 4000, func(tx *core.Tx) {
				v := p.Load(hot)
				p.Tick(50)
				p.Store(hot, v+1)
			})
		}
	}

	bodies := make([]func(*core.Proc), cfg.CPUs)
	for i := range bodies {
		bodies[i] = worker
	}
	rep := m.Run(bodies...)

	var spilled uint64
	for i, n := range perCPU {
		spilled += n
		_ = i
	}
	// Reconcile: direct counter plus every fallback cell.
	direct := m.Mem().Load(hot)
	var cellSum uint64
	for _, c := range fallback {
		cellSum += m.Mem().Load(c)
	}
	if cellSum != spilled {
		panic(fmt.Sprintf("fallback cells hold %d, recorded %d", cellSum, spilled))
	}
	fmt.Printf("direct increments: %d, spilled to fallback: %d (total %d, want %d)\n",
		direct, spilled, direct+spilled, cfg.CPUs*30)
	fmt.Printf("violations: %d, rollbacks: %d\n", rep.Machine.Violations, rep.Machine.Rollbacks)
	if direct+spilled != uint64(cfg.CPUs*30) {
		panic("lost updates")
	}
}
