// Txio: system calls and I/O inside transactions (Section 5).
//
// Output: each worker logs a record per transaction; the transactional
// I/O library buffers the bytes privately and registers a commit handler
// that performs the real write system call between xvalidate and xcommit,
// so violated transactions never emit their output twice (or at all).
//
// Input: a reader consumes a file inside transactions; the read syscall
// executes immediately in an open-nested transaction, and a violation/
// abort handler compensates by seeking back, so a rolled-back transaction
// re-reads the same bytes.
//
// Run with: go run ./examples/txio
package main

import (
	"fmt"

	"tmisa/internal/core"
	"tmisa/internal/txrt"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.CPUs = 4
	m := core.NewMachine(cfg)

	sys := txrt.NewIOSys()
	tio := txrt.NewTxIO(sys)
	logFD := sys.Open("audit.log")
	inFD := sys.Open("input.dat")

	// Pre-populate the input file via raw (untimed) syscalls.
	setup := m.SetupProc()
	sys.SysWrite(setup, inFD, []byte("0123456789abcdef"))
	sys.SysSeek(setup, inFD, 0)

	shared := m.AllocLine()
	var chunks [][]byte

	writer := func(p *core.Proc) {
		for i := 0; i < 6; i++ {
			p.Atomic(func(tx *core.Tx) {
				v := p.Load(shared)
				p.Tick(300)
				p.Store(shared, v+1)
				// Buffered transactional write: committed exactly once even
				// if this transaction is violated and re-executed.
				tio.Write(p, tx, logFD, []byte(fmt.Sprintf("cpu%d op%d;", p.ID(), i)))
			})
		}
	}
	reader := func(p *core.Proc) {
		for i := 0; i < 4; i++ {
			var data []byte
			p.Atomic(func(tx *core.Tx) {
				p.Load(shared) // make the reader violable
				data = tio.Read(p, tx, inFD, 4)
				p.Tick(200)
			})
			// Record outside the transaction: a violated attempt's read is
			// compensated (lseek back) and must not be double-counted.
			chunks = append(chunks, data)
		}
	}

	m.Run(writer, writer, writer, reader)

	fmt.Printf("audit log (%d bytes): %s\n", sys.Size(logFD), sys.Contents(logFD))
	fmt.Printf("reader consumed: %q\n", chunks)
	fmt.Printf("syscalls issued: %d\n", m.Report().Machine.Syscalls)
}
