// Prodcons: conditional synchronization with watch/retry (Figure 3).
//
// A producer and a consumer hand values through a single-slot mailbox.
// Neither side polls and neither side notifies: the consumer watches the
// `available` flag and retries (parking its thread); the scheduler thread
// folds the watched address into its read-set, so the producer's commit
// violates the scheduler, whose violation handler wakes the consumer.
//
// Run with: go run ./examples/prodcons
package main

import (
	"fmt"

	"tmisa/internal/core"
	"tmisa/internal/txrt"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.CPUs = 3 // scheduler + two workers
	m := core.NewMachine(cfg)

	available := m.AllocLine()
	value := m.AllocLine()

	ts := txrt.NewThreadSys()
	cs := txrt.NewCondSync(m, ts)

	const items = 10
	var received []uint64

	ts.Spawn(func(p *core.Proc, th *txrt.Thread) { // consumer
		for k := 0; k < items; k++ {
			var got uint64
			ts.AtomicWithRetry(th, func(p *core.Proc, tx *core.Tx) {
				// Wait until a value is available; if not, watch + retry
				// parks this thread until the producer's commit wakes it.
				cs.WaitUntil(p, th, tx, available, func(v uint64) bool { return v != 0 })
				got = p.Load(value)
				p.Store(available, 0)
			})
			// Go-side effects belong after the commit: a violated attempt
			// re-executes its body.
			received = append(received, got)
		}
	})
	ts.Spawn(func(p *core.Proc, th *txrt.Thread) { // producer
		for k := 0; k < items; k++ {
			th.Proc().Tick(500) // produce the next item
			ts.AtomicWithRetry(th, func(p *core.Proc, tx *core.Tx) {
				cs.WaitUntil(p, th, tx, available, func(v uint64) bool { return v == 0 })
				p.Store(value, uint64(k)*k2+1)
				p.Store(available, 1)
			})
		}
	})

	rep := m.Run(cs.SchedulerMain, ts.Dispatch, ts.Dispatch)

	fmt.Printf("received %d items: %v\n", len(received), received)
	fmt.Printf("scheduler wakeups: %d (immediate: %d)\n", cs.Wakes, cs.ImmediateWakes)
	fmt.Printf("simulated cycles: %d, violations: %d\n", rep.TotalCycles, rep.Machine.Violations)
}

const k2 = 7
